#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "detectors/anomalydae.h"
#include "detectors/arm.h"
#include "detectors/cola.h"
#include "detectors/conad.h"
#include "detectors/dominant.h"
#include "detectors/guide.h"
#include "detectors/nondeep.h"
#include "detectors/done.h"
#include "detectors/registry.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "injection/injection.h"
#include "obs/monitor.h"

namespace vgod {
namespace {

using namespace ::vgod::detectors;  // NOLINT: test-local convenience.

AttributedGraph CleanGraph(int n = 300, uint64_t seed = 1) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 4;
  spec.avg_degree = 4.0;
  spec.attribute_dim = 48;
  spec.topic_dims_per_community = 10;
  Rng rng(seed);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

injection::InjectionResult StandardInjected(uint64_t seed = 2) {
  AttributedGraph g = CleanGraph(300, seed);
  Rng rng(seed + 1);
  return std::move(injection::InjectStandard(g, 2, 8, 50, &rng)).value();
}

VbmConfig SmallVbm(bool self_loop = false) {
  VbmConfig config;
  config.hidden_dim = 32;
  config.epochs = 8;
  config.self_loop = self_loop;
  return config;
}

ArmConfig SmallArm(gnn::GnnKind kind = gnn::GnnKind::kGat) {
  ArmConfig config;
  config.hidden_dim = 16;  // Test graphs are ~300 nodes; see ArmConfig docs.
  config.epochs = 30;
  config.gnn = kind;
  return config;
}

bool AllFinite(const std::vector<double>& scores) {
  for (double s : scores) {
    if (!std::isfinite(s)) return false;
  }
  return true;
}

// --- simple probes ---

TEST(SimpleDetectorsTest, DegNormComponentsAndCombination) {
  injection::InjectionResult injected = StandardInjected();
  DegNorm detector;
  ASSERT_TRUE(detector.Fit(injected.graph).ok());
  DetectorOutput out = detector.Score(injected.graph);
  ASSERT_TRUE(out.has_components());
  EXPECT_EQ(out.score.size(), static_cast<size_t>(injected.graph.num_nodes()));
  // Leakage: degree detects structural, L2 detects contextual outliers.
  EXPECT_GT(eval::AucSubset(out.structural_score, injected.combined,
                            injected.structural),
            0.9);
  EXPECT_GT(eval::AucSubset(out.contextual_score, injected.combined,
                            injected.contextual),
            0.75);
  EXPECT_GT(eval::Auc(out.score, injected.combined), 0.75);
}

TEST(SimpleDetectorsTest, RandomDetectorNearHalf) {
  injection::InjectionResult injected = StandardInjected();
  RandomDetector detector(3);
  ASSERT_TRUE(detector.Fit(injected.graph).ok());
  EXPECT_NEAR(eval::Auc(detector.Score(injected.graph).score,
                        injected.combined),
              0.5, 0.2);
}

// --- VBM ---

TEST(VbmTest, DetectsStructuralOutliers) {
  AttributedGraph g = CleanGraph(300, 5);
  Rng rng(6);
  injection::InjectionResult injected =
      std::move(injection::InjectStructuralOutliers(g, 2, 8, &rng)).value();
  Vbm vbm(SmallVbm());
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  DetectorOutput out = vbm.Score(injected.graph);
  EXPECT_GT(eval::Auc(out.score, injected.structural), 0.85);
}

TEST(VbmTest, DetectsEdgeReplacementOutliersWithoutDegreeSignal) {
  // The decisive experiment (paper Table VI): no degree leakage at all.
  AttributedGraph g = CleanGraph(400, 7);
  Rng rng(8);
  injection::InjectionResult injected =
      std::move(injection::InjectStructuralByEdgeReplacement(g, 40, &rng))
          .value();
  // Self-loop matters on sparse graphs: degree-1 victims have zero
  // neighbor variance without it (the paper enables it on the sparse
  // citation datasets).
  Vbm vbm(SmallVbm(/*self_loop=*/true));
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  EXPECT_GT(eval::Auc(vbm.Score(injected.graph).score, injected.structural),
            0.75);
  // Degree is (near) useless here.
  Deg deg;
  ASSERT_TRUE(deg.Fit(injected.graph).ok());
  EXPECT_LT(eval::Auc(deg.Score(injected.graph).score, injected.structural),
            0.65);
}

TEST(VbmTest, SelfLoopEnablesContextualDetection) {
  // Paper Table XI: plain VBM is blind to contextual outliers (~0.5 AUC);
  // the self-loop technique makes them visible.
  AttributedGraph g = CleanGraph(300, 9);
  Rng rng(10);
  injection::InjectionResult injected =
      std::move(injection::InjectContextualOutliers(
                    g, 20, 50, injection::DistanceKind::kEuclidean, &rng))
          .value();
  Vbm plain(SmallVbm(false));
  Vbm with_loop(SmallVbm(true));
  ASSERT_TRUE(plain.Fit(injected.graph).ok());
  ASSERT_TRUE(with_loop.Fit(injected.graph).ok());
  const double auc_plain =
      eval::Auc(plain.Score(injected.graph).score, injected.contextual);
  const double auc_loop =
      eval::Auc(with_loop.Score(injected.graph).score, injected.contextual);
  EXPECT_LT(auc_plain, 0.7);
  EXPECT_GT(auc_loop, auc_plain + 0.1);
}

TEST(VbmTest, MonitorReceivesEpochRecordsAndScores) {
  injection::InjectionResult injected = StandardInjected(11);
  VbmConfig config = SmallVbm();
  config.epochs = 3;
  obs::TrainingMonitor monitor;
  int calls = 0;
  monitor.SetScoreProbe([&calls, &injected](const std::string& detector,
                                            int epoch,
                                            const std::vector<double>& scores) {
    ++calls;
    EXPECT_EQ(detector, "VBM");
    EXPECT_EQ(epoch, calls);
    EXPECT_EQ(scores.size(),
              static_cast<size_t>(injected.graph.num_nodes()));
  });
  config.monitor = &monitor;
  Vbm vbm(config);
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  EXPECT_EQ(calls, 3);
  const std::vector<obs::EpochRecord> records = monitor.Records();
  ASSERT_EQ(records.size(), 3u);
  ASSERT_EQ(vbm.train_stats().epoch_records.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const obs::EpochRecord& record = records[i];
    EXPECT_EQ(record.detector, "VBM");
    EXPECT_EQ(record.epoch, i + 1);
    EXPECT_EQ(record.planned_epochs, 3);
    EXPECT_TRUE(std::isfinite(record.loss));
    EXPECT_GE(record.grad_norm, 0.0);
    EXPECT_GT(record.seconds, 0.0);
  }
}

TEST(VbmTest, TrainStatsPopulated) {
  injection::InjectionResult injected = StandardInjected(12);
  Vbm vbm(SmallVbm());
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  EXPECT_EQ(vbm.train_stats().epochs, 8);
  EXPECT_GT(vbm.train_stats().train_seconds, 0.0);
  EXPECT_GT(vbm.train_stats().SecondsPerEpoch(), 0.0);
}

TEST(VbmTest, RequiresAttributes) {
  Result<AttributedGraph> g =
      AttributedGraph::FromEdgeList(10, {{0, 1}}, Tensor());
  Vbm vbm(SmallVbm());
  EXPECT_EQ(vbm.Fit(g.value()).code(), StatusCode::kFailedPrecondition);
}

// --- ARM ---

TEST(ArmTest, DetectsContextualOutliers) {
  AttributedGraph g = CleanGraph(300, 13);
  Rng rng(14);
  injection::InjectionResult injected =
      std::move(injection::InjectContextualOutliers(
                    g, 20, 50, injection::DistanceKind::kEuclidean, &rng))
          .value();
  Arm arm(SmallArm());
  ASSERT_TRUE(arm.Fit(injected.graph).ok());
  EXPECT_GT(eval::Auc(arm.Score(injected.graph).score, injected.contextual),
            0.8);
}

class ArmBackboneTest : public ::testing::TestWithParam<gnn::GnnKind> {};

TEST_P(ArmBackboneTest, EveryBackboneLearnsToReconstruct) {
  AttributedGraph g = CleanGraph(250, 15);
  Rng rng(16);
  injection::InjectionResult injected =
      std::move(injection::InjectContextualOutliers(
                    g, 16, 50, injection::DistanceKind::kEuclidean, &rng))
          .value();
  Arm arm(SmallArm(GetParam()));
  ASSERT_TRUE(arm.Fit(injected.graph).ok());
  DetectorOutput out = arm.Score(injected.graph);
  EXPECT_TRUE(AllFinite(out.score));
  EXPECT_GT(eval::Auc(out.score, injected.contextual), 0.65)
      << gnn::GnnKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backbones, ArmBackboneTest,
                         ::testing::Values(gnn::GnnKind::kGcn,
                                           gnn::GnnKind::kGat,
                                           gnn::GnnKind::kGin),
                         [](const ::testing::TestParamInfo<gnn::GnnKind>& i) {
                           return gnn::GnnKindName(i.param);
                         });

// --- VGOD ---

TEST(VgodTest, BalancedDetectionOnStandardInjection) {
  injection::InjectionResult injected = StandardInjected(17);
  VgodConfig config;
  config.vbm = SmallVbm(true);
  config.arm = SmallArm();
  Vgod vgod(config);
  ASSERT_TRUE(vgod.Fit(injected.graph).ok());
  DetectorOutput out = vgod.Score(injected.graph);
  ASSERT_TRUE(out.has_components());
  const double auc = eval::Auc(out.score, injected.combined);
  EXPECT_GT(auc, 0.8);
  const double str_auc =
      eval::AucSubset(out.score, injected.combined, injected.structural);
  const double ctx_auc =
      eval::AucSubset(out.score, injected.combined, injected.contextual);
  EXPECT_LT(eval::AucGap(str_auc, ctx_auc), 1.4);
}

TEST(VgodTest, CombinationStrategiesProduceDifferentScores) {
  injection::InjectionResult injected = StandardInjected(18);
  for (ScoreCombination combination :
       {ScoreCombination::kMeanStd, ScoreCombination::kSumToUnit,
        ScoreCombination::kWeighted}) {
    VgodConfig config;
    config.vbm = SmallVbm(true);
    config.vbm.epochs = 3;
    config.arm = SmallArm();
    config.arm.epochs = 10;
    config.combination = combination;
    Vgod vgod(config);
    ASSERT_TRUE(vgod.Fit(injected.graph).ok());
    DetectorOutput out = vgod.Score(injected.graph);
    EXPECT_TRUE(AllFinite(out.score))
        << ScoreCombinationName(combination);
    EXPECT_GT(eval::Auc(out.score, injected.combined), 0.6)
        << ScoreCombinationName(combination);
  }
}

// --- baselines: mechanical soundness + basic quality ---

TEST(DominantTest, RunsAndDetectsSomething) {
  injection::InjectionResult injected = StandardInjected(19);
  DominantConfig config;
  config.hidden_dim = 32;
  config.epochs = 25;
  Dominant dominant(config);
  ASSERT_TRUE(dominant.Fit(injected.graph).ok());
  DetectorOutput out = dominant.Score(injected.graph);
  ASSERT_TRUE(out.has_components());
  EXPECT_TRUE(AllFinite(out.score));
  EXPECT_GT(eval::Auc(out.score, injected.combined), 0.55);
}

TEST(AnomalyDaeTest, RunsAndRefusesInductive) {
  injection::InjectionResult injected = StandardInjected(20);
  AnomalyDaeConfig config;
  config.hidden_dim = 32;
  config.epochs = 25;
  AnomalyDae model(config);
  EXPECT_FALSE(model.supports_inductive());
  ASSERT_TRUE(model.Fit(injected.graph).ok());
  DetectorOutput out = model.Score(injected.graph);
  EXPECT_TRUE(AllFinite(out.score));
  EXPECT_GT(eval::Auc(out.score, injected.combined), 0.55);
  // Scoring a different-size graph must abort (model is graph-bound).
  AttributedGraph other = CleanGraph(100, 21);
  EXPECT_DEATH(model.Score(other), "non-inductive");
}

TEST(DoneTest, RunsWithFiveTermLoss) {
  injection::InjectionResult injected = StandardInjected(22);
  DoneConfig config;
  config.hidden_dim = 32;
  config.epochs = 20;
  Done done(config);
  ASSERT_TRUE(done.Fit(injected.graph).ok());
  DetectorOutput out = done.Score(injected.graph);
  ASSERT_TRUE(out.has_components());
  EXPECT_TRUE(AllFinite(out.score));
  EXPECT_GT(eval::Auc(out.score, injected.combined), 0.55);
}

TEST(ColaTest, RunsMultiRoundInference) {
  injection::InjectionResult injected = StandardInjected(23);
  ColaConfig config;
  config.hidden_dim = 32;
  config.epochs = 10;
  config.test_rounds = 4;
  Cola cola(config);
  ASSERT_TRUE(cola.Fit(injected.graph).ok());
  DetectorOutput out = cola.Score(injected.graph);
  EXPECT_TRUE(AllFinite(out.score));
  EXPECT_EQ(out.score.size(),
            static_cast<size_t>(injected.graph.num_nodes()));
  // CoLA emits no component scores (paper Table II).
  EXPECT_FALSE(out.has_components());
}

TEST(ConadTest, RunsWithAugmentation) {
  injection::InjectionResult injected = StandardInjected(24);
  ConadConfig config;
  config.hidden_dim = 32;
  config.epochs = 15;
  Conad conad(config);
  ASSERT_TRUE(conad.Fit(injected.graph).ok());
  DetectorOutput out = conad.Score(injected.graph);
  ASSERT_TRUE(out.has_components());
  EXPECT_TRUE(AllFinite(out.score));
  EXPECT_GT(eval::Auc(out.score, injected.combined), 0.55);
}

// --- mini-batch VBM (paper §V-D extension) ---

TEST(VbmMiniBatchTest, MatchesFullBatchQuality) {
  AttributedGraph g = CleanGraph(300, 27);
  Rng rng(28);
  injection::InjectionResult injected =
      std::move(injection::InjectStructuralOutliers(g, 2, 8, &rng)).value();

  VbmConfig full = SmallVbm();
  VbmConfig mini = SmallVbm();
  mini.batch_size = 64;
  Vbm vbm_full(full), vbm_mini(mini);
  ASSERT_TRUE(vbm_full.Fit(injected.graph).ok());
  ASSERT_TRUE(vbm_mini.Fit(injected.graph).ok());
  const double auc_full =
      eval::Auc(vbm_full.Score(injected.graph).score, injected.structural);
  const double auc_mini =
      eval::Auc(vbm_mini.Score(injected.graph).score, injected.structural);
  EXPECT_GT(auc_full, 0.85);
  EXPECT_GT(auc_mini, 0.85);
  EXPECT_NEAR(auc_mini, auc_full, 0.1);
}

TEST(VbmMiniBatchTest, NeighborSamplingCapWorks) {
  AttributedGraph g = CleanGraph(300, 29);
  Rng rng(30);
  injection::InjectionResult injected =
      std::move(injection::InjectStructuralOutliers(g, 2, 10, &rng)).value();
  VbmConfig config = SmallVbm();
  config.batch_size = 50;
  config.max_neighbors_per_node = 4;  // Below the injected clique degree.
  Vbm vbm(config);
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  EXPECT_GT(eval::Auc(vbm.Score(injected.graph).score, injected.structural),
            0.8);
}

TEST(VbmMiniBatchTest, BatchSizeLargerThanGraph) {
  AttributedGraph g = CleanGraph(120, 31);
  Rng rng(32);
  injection::InjectionResult injected =
      std::move(injection::InjectStructuralOutliers(g, 1, 8, &rng)).value();
  VbmConfig config = SmallVbm();
  config.batch_size = 10000;  // One batch covering everything.
  Vbm vbm(config);
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  EXPECT_GT(eval::Auc(vbm.Score(injected.graph).score, injected.structural),
            0.8);
}

// --- serialization ---

TEST(SerializationTest, VbmRoundTripScoresIdentical) {
  injection::InjectionResult injected = StandardInjected(33);
  VbmConfig config = SmallVbm(true);
  Vbm original(config);
  ASSERT_TRUE(original.Fit(injected.graph).ok());
  const std::string path = ::testing::TempDir() + "/vbm.params";
  ASSERT_TRUE(original.Save(path).ok());

  Vbm restored(config);  // Never fitted.
  ASSERT_TRUE(restored.Load(path).ok());
  std::vector<double> a = original.Score(injected.graph).score;
  std::vector<double> b = restored.Score(injected.graph).score;
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(SerializationTest, VgodRoundTripScoresIdentical) {
  injection::InjectionResult injected = StandardInjected(34);
  VgodConfig config;
  config.vbm = SmallVbm(true);
  config.vbm.epochs = 3;
  config.arm = SmallArm();
  config.arm.epochs = 8;
  Vgod original(config);
  ASSERT_TRUE(original.Fit(injected.graph).ok());
  const std::string prefix = ::testing::TempDir() + "/vgod_model";
  ASSERT_TRUE(original.Save(prefix).ok());

  Vgod restored(config);
  ASSERT_TRUE(restored.Load(prefix).ok());
  std::vector<double> a = original.Score(injected.graph).score;
  std::vector<double> b = restored.Score(injected.graph).score;
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove((prefix + ".vbm").c_str());
  std::remove((prefix + ".arm").c_str());
}

TEST(SerializationTest, SaveBeforeFitFails) {
  Vbm vbm(SmallVbm());
  EXPECT_EQ(vbm.Save("/tmp/never.params").code(),
            StatusCode::kFailedPrecondition);
}

TEST(SerializationTest, LoadRejectsMismatchedHiddenDim) {
  injection::InjectionResult injected = StandardInjected(35);
  VbmConfig config = SmallVbm();
  Vbm original(config);
  ASSERT_TRUE(original.Fit(injected.graph).ok());
  const std::string path = ::testing::TempDir() + "/vbm_mismatch.params";
  ASSERT_TRUE(original.Save(path).ok());

  VbmConfig other = SmallVbm();
  other.hidden_dim = config.hidden_dim * 2;
  Vbm restored(other);
  EXPECT_EQ(restored.Load(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/garbage.params";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not parameters\n", f);
  std::fclose(f);
  Vbm vbm(SmallVbm());
  EXPECT_FALSE(vbm.Load(path).ok());
  std::remove(path.c_str());
}

// --- non-deep baselines (Radar / ANOMALOUS) ---

TEST(NonDeepTest, RadarDetectsContextualOutliers) {
  AttributedGraph g = CleanGraph(250, 37);
  Rng rng(38);
  injection::InjectionResult injected =
      std::move(injection::InjectContextualOutliers(
                    g, 16, 50, injection::DistanceKind::kEuclidean, &rng))
          .value();
  ResidualAnalysisConfig config;
  config.epochs = 40;
  Radar radar(config);
  ASSERT_TRUE(radar.Fit(injected.graph).ok());
  EXPECT_GT(eval::Auc(radar.Score(injected.graph).score, injected.contextual),
            0.7);
  EXPECT_FALSE(radar.supports_inductive());
}

TEST(NonDeepTest, AnomalousDetectsContextualOutliers) {
  AttributedGraph g = CleanGraph(250, 39);
  Rng rng(40);
  injection::InjectionResult injected =
      std::move(injection::InjectContextualOutliers(
                    g, 16, 50, injection::DistanceKind::kEuclidean, &rng))
          .value();
  ResidualAnalysisConfig config;
  config.epochs = 40;
  Anomalous anomalous(config);
  ASSERT_TRUE(anomalous.Fit(injected.graph).ok());
  EXPECT_GT(
      eval::Auc(anomalous.Score(injected.graph).score, injected.contextual),
      0.7);
}

TEST(NonDeepTest, RegistryBuildsBoth) {
  injection::InjectionResult injected = StandardInjected(41);
  DetectorOptions options;
  options.epoch_scale = 0.3;
  for (const char* name : {"Radar", "ANOMALOUS"}) {
    Result<std::unique_ptr<OutlierDetector>> detector =
        MakeDetector(name, options);
    ASSERT_TRUE(detector.ok()) << name;
    ASSERT_TRUE(detector.value()->Fit(injected.graph).ok()) << name;
    EXPECT_TRUE(AllFinite(detector.value()->Score(injected.graph).score))
        << name;
  }
}

TEST(NonDeepTest, ScoringDifferentGraphAborts) {
  injection::InjectionResult injected = StandardInjected(42);
  ResidualAnalysisConfig config;
  config.epochs = 5;
  Radar radar(config);
  ASSERT_TRUE(radar.Fit(injected.graph).ok());
  AttributedGraph other = CleanGraph(100, 43);
  EXPECT_DEATH(radar.Score(other), "non-inductive");
}

// --- GUIDE (higher-order structure reconstruction, paper ref [21]) ---

TEST(GuideTest, MotifReconstructionFlagsCliques) {
  AttributedGraph g = CleanGraph(300, 45);
  Rng rng(46);
  injection::InjectionResult injected =
      std::move(injection::InjectStructuralOutliers(g, 2, 8, &rng)).value();
  GuideConfig config;
  config.epochs = 25;
  Guide guide(config);
  ASSERT_TRUE(guide.Fit(injected.graph).ok());
  DetectorOutput out = guide.Score(injected.graph);
  ASSERT_TRUE(out.has_components());
  // Injected cliques have extreme motif statistics; the structural
  // component must pick them up.
  EXPECT_GT(eval::Auc(out.structural_score, injected.structural), 0.8);
}

TEST(GuideTest, RegistryAndInductive) {
  injection::InjectionResult injected = StandardInjected(47);
  DetectorOptions options;
  options.epoch_scale = 0.5;
  Result<std::unique_ptr<OutlierDetector>> guide =
      MakeDetector("GUIDE", options);
  ASSERT_TRUE(guide.ok());
  EXPECT_TRUE(guide.value()->supports_inductive());
  ASSERT_TRUE(guide.value()->Fit(injected.graph).ok());
  EXPECT_TRUE(AllFinite(guide.value()->Score(injected.graph).score));
}

// --- rank score combination (extension) ---

TEST(VgodTest, RankCombinationWorks) {
  injection::InjectionResult injected = StandardInjected(44);
  VgodConfig config;
  config.vbm = SmallVbm(true);
  config.vbm.epochs = 3;
  config.arm = SmallArm();
  config.arm.epochs = 10;
  config.combination = ScoreCombination::kRank;
  Vgod vgod(config);
  ASSERT_TRUE(vgod.Fit(injected.graph).ok());
  DetectorOutput out = vgod.Score(injected.graph);
  EXPECT_TRUE(AllFinite(out.score));
  // Rank sums live in (0, 2].
  for (double s : out.score) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 2.0);
  }
  EXPECT_GT(eval::Auc(out.score, injected.combined), 0.6);
}

// --- registry ---

TEST(DetectorRegistryTest, AllComparisonNamesBuildAndRun) {
  injection::InjectionResult injected = StandardInjected(25);
  DetectorOptions options;
  options.epoch_scale = 0.1;  // Keep this smoke test fast.
  for (const std::string& name : ComparisonDetectorNames()) {
    Result<std::unique_ptr<OutlierDetector>> detector =
        MakeDetector(name, options);
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_EQ(detector.value()->name(), name);
    ASSERT_TRUE(detector.value()->Fit(injected.graph).ok()) << name;
    DetectorOutput out = detector.value()->Score(injected.graph);
    EXPECT_EQ(out.score.size(),
              static_cast<size_t>(injected.graph.num_nodes()))
        << name;
    EXPECT_TRUE(AllFinite(out.score)) << name;
  }
}

TEST(DetectorRegistryTest, ComponentDetectorNames) {
  for (const char* name : {"VBM", "ARM", "Deg", "L2Norm", "Random"}) {
    EXPECT_TRUE(MakeDetector(name).ok()) << name;
  }
  EXPECT_EQ(MakeDetector("GPT").status().code(), StatusCode::kNotFound);
}

TEST(DetectorRegistryTest, DeterministicAcrossRuns) {
  injection::InjectionResult injected = StandardInjected(26);
  DetectorOptions options;
  options.seed = 99;
  options.epoch_scale = 0.3;
  auto run = [&]() {
    std::unique_ptr<OutlierDetector> detector =
        std::move(MakeDetector("VGOD", options)).value();
    VGOD_CHECK(detector->Fit(injected.graph).ok());
    return detector->Score(injected.graph).score;
  };
  std::vector<double> a = run();
  std::vector<double> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace vgod
