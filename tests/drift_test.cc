// Model-quality observability tests (docs/OBSERVABILITY.md): the
// quantile sketch's error bounds / merge algebra / determinism, the
// bundle fingerprint round trip, the drift monitor's PSI/KS behavior and
// window rotation, the alert-rule parser's hostile-config handling, the
// alert state machine, and the webhook URL validator.
#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/alerts.h"
#include "obs/drift.h"
#include "obs/fingerprint.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sketch.h"
#include "serve/notify.h"

namespace vgod {
namespace {

// Serialization with the "sum" member dropped: every quantile-bearing
// piece of sketch state (buckets, count, min/max, alpha). The running
// sum is an exact double accumulation, so it picks up ULP-level
// differences from insertion/merge order — FP addition is not
// associative — while the bucket maps are integer counts and compare
// bit-exactly.
std::string DumpWithoutSum(const obs::QuantileSketch& sketch) {
  obs::JsonValue::Object object = sketch.ToJson().object();
  object.erase("sum");
  return obs::JsonValue(std::move(object)).Dump();
}

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

// |estimate - exact| <= alpha * |exact| for values outside the zero
// bucket, with a little slack for the rank discretization at the exact
// quantile's bucket boundary.
void ExpectQuantilesClose(const obs::QuantileSketch& sketch,
                          const std::vector<double>& values, double alpha) {
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = ExactQuantile(values, q);
    const double estimate = sketch.Quantile(q);
    const double tolerance = 2.0 * alpha * std::abs(exact) + 1e-9;
    EXPECT_NEAR(estimate, exact, tolerance)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(QuantileSketch, ErrorBoundOnRandomPositiveData) {
  std::mt19937 rng(7);
  std::lognormal_distribution<double> dist(0.0, 1.5);
  std::vector<double> values;
  obs::QuantileSketch sketch(0.01);
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    sketch.Insert(v);
  }
  EXPECT_EQ(sketch.Count(), 20000);
  ExpectQuantilesClose(sketch, values, 0.01);
}

TEST(QuantileSketch, ErrorBoundOnMixedSignScores) {
  // Served VGOD scores are roughly centered at zero with both signs —
  // the shape the two-sided bucket tables exist for.
  std::mt19937 rng(11);
  std::normal_distribution<double> dist(0.0, 2.0);
  std::vector<double> values;
  obs::QuantileSketch sketch(0.01);
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    sketch.Insert(v);
  }
  ExpectQuantilesClose(sketch, values, 0.01);
  EXPECT_LT(sketch.Min(), 0.0);
  EXPECT_GT(sketch.Max(), 0.0);
}

TEST(QuantileSketch, AdversarialInputs) {
  obs::QuantileSketch sketch(0.02);
  // Constant stream: every quantile is that constant (within alpha).
  for (int i = 0; i < 100; ++i) sketch.Insert(42.0);
  EXPECT_NEAR(sketch.Quantile(0.0), 42.0, 42.0 * 0.05);
  EXPECT_NEAR(sketch.Quantile(1.0), 42.0, 42.0 * 0.05);

  // 60 decades of magnitude plus zeros and denormal-tiny values: the
  // bounded bucket index range must absorb all of it without blowup.
  obs::QuantileSketch wide(0.02);
  for (int e = -30; e <= 30; ++e) wide.Insert(std::pow(10.0, e));
  wide.Insert(0.0);
  wide.Insert(1e-300);
  wide.Insert(-1e-300);
  EXPECT_EQ(wide.Count(), 64);
  EXPECT_GT(wide.Quantile(0.99), 1e28);

  // Non-finite values are ignored, not propagated into the buckets.
  obs::QuantileSketch finite(0.02);
  finite.Insert(std::numeric_limits<double>::quiet_NaN());
  finite.Insert(std::numeric_limits<double>::infinity());
  finite.Insert(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(finite.Count(), 0);
  finite.Insert(1.0);
  EXPECT_EQ(finite.Count(), 1);
}

TEST(QuantileSketch, MergeMatchesConcatenationAndIsAssociative) {
  std::mt19937 rng(23);
  std::normal_distribution<double> dist(1.0, 3.0);
  std::vector<std::vector<double>> parts(3);
  obs::QuantileSketch all(0.01);
  std::vector<obs::QuantileSketch> sketches(3, obs::QuantileSketch(0.01));
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 5000; ++i) {
      const double v = dist(rng);
      parts[p].push_back(v);
      sketches[p].Insert(v);
      all.Insert(v);
    }
  }
  // (a + b) + c
  obs::QuantileSketch left(sketches[0]);
  ASSERT_TRUE(left.Merge(sketches[1]).ok());
  ASSERT_TRUE(left.Merge(sketches[2]).ok());
  // a + (b + c)
  obs::QuantileSketch tail(sketches[1]);
  ASSERT_TRUE(tail.Merge(sketches[2]).ok());
  obs::QuantileSketch right(sketches[0]);
  ASSERT_TRUE(right.Merge(tail).ok());

  // Merge is bucket-wise addition, so both groupings and the
  // concatenated stream carry identical buckets/count/min/max; the
  // running sum only matches to FP-accumulation-order tolerance.
  EXPECT_EQ(DumpWithoutSum(left), DumpWithoutSum(right));
  EXPECT_EQ(DumpWithoutSum(left), DumpWithoutSum(all));
  EXPECT_NEAR(left.Sum(), all.Sum(), 1e-9 * std::abs(all.Sum()) + 1e-9);
  EXPECT_NEAR(right.Sum(), all.Sum(), 1e-9 * std::abs(all.Sum()) + 1e-9);

  obs::QuantileSketch other_alpha(0.05);
  EXPECT_FALSE(left.Merge(other_alpha).ok());
}

TEST(QuantileSketch, DeterministicAcrossThreadCounts) {
  // The same multiset of values, inserted by 1 vs 4 threads into
  // per-thread sketches then merged, must carry identical buckets —
  // the property that makes drift evaluation reproducible. (The sum
  // is FP-order sensitive, so it is checked to tolerance instead.)
  std::vector<double> values;
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (int i = 0; i < 8000; ++i) values.push_back(dist(rng));

  obs::QuantileSketch serial(0.01);
  for (double v : values) serial.Insert(v);

  for (int threads : {2, 4}) {
    std::vector<obs::QuantileSketch> shards(
        static_cast<size_t>(threads), obs::QuantileSketch(0.01));
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = static_cast<size_t>(t); i < values.size();
             i += static_cast<size_t>(threads)) {
          shards[static_cast<size_t>(t)].Insert(values[i]);
        }
      });
    }
    for (std::thread& thread : pool) thread.join();
    obs::QuantileSketch merged(0.01);
    for (const obs::QuantileSketch& shard : shards) {
      ASSERT_TRUE(merged.Merge(shard).ok());
    }
    EXPECT_EQ(DumpWithoutSum(merged), DumpWithoutSum(serial))
        << threads << " threads";
    EXPECT_NEAR(merged.Sum(), serial.Sum(),
                1e-9 * std::abs(serial.Sum()) + 1e-9)
        << threads << " threads";
  }
}

TEST(QuantileSketch, ConcurrentInsertAndReadIsSafe) {
  // TSan target: concurrent Insert with Quantile/ToJson reads.
  obs::QuantileSketch sketch(0.01);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&sketch, t] {
      for (int i = 0; i < 2000; ++i) {
        sketch.Insert(static_cast<double>(t * 2000 + i) * 0.01 - 40.0);
      }
    });
  }
  pool.emplace_back([&sketch] {
    for (int i = 0; i < 200; ++i) {
      (void)sketch.Quantile(0.5);
      (void)sketch.ToJson();
      (void)sketch.MassBelow(0.0);
    }
  });
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(sketch.Count(), 8000);
}

TEST(QuantileSketch, AgreesWithHistogramQuantile) {
  // Coarse cross-check against the fixed-bucket estimator the latency
  // metrics use: same uniform data, estimates within a bucket width.
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  obs::QuantileSketch sketch(0.01);
  std::vector<double> bounds;
  for (double b = 0.05; b <= 1.0; b += 0.05) bounds.push_back(b);
  obs::Histogram histogram(bounds);
  for (int i = 0; i < 50000; ++i) {
    const double v = dist(rng);
    sketch.Insert(v);
    histogram.Observe(v);
  }
  for (double q : {0.25, 0.5, 0.9}) {
    EXPECT_NEAR(sketch.Quantile(q), obs::HistogramQuantile(histogram, q),
                0.05)
        << "q=" << q;
  }
}

TEST(QuantileSketch, JsonRoundTripAndHostileInputs) {
  obs::QuantileSketch sketch(0.01);
  for (double v : {-3.0, -0.5, 0.0, 0.25, 1.0, 1.0, 7.5}) sketch.Insert(v);
  Result<obs::QuantileSketch> restored =
      obs::QuantileSketch::FromJson(sketch.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().ToJson().Dump(), sketch.ToJson().Dump());
  EXPECT_EQ(restored.value().Count(), sketch.Count());
  EXPECT_DOUBLE_EQ(restored.value().Quantile(0.5), sketch.Quantile(0.5));

  for (const char* hostile : {
           "[]",                                    // not an object
           "{\"alpha\":2.0,\"count\":0}",           // alpha out of range
           "{\"alpha\":0.01,\"count\":1,\"pos\":{\"x\":1}}",  // bad index
           "{\"alpha\":0.01,\"count\":1,\"pos\":{\"3\":-4}}", // bad count
       }) {
    Result<obs::JsonValue> parsed = obs::ParseJson(hostile);
    ASSERT_TRUE(parsed.ok()) << hostile;
    EXPECT_FALSE(obs::QuantileSketch::FromJson(parsed.value()).ok())
        << hostile;
  }
}

TEST(SketchStatistics, PsiAndKsSeparateShiftedDistributions) {
  std::mt19937 rng(31);
  std::normal_distribution<double> base_dist(0.0, 1.0);
  obs::QuantileSketch baseline(0.01);
  obs::QuantileSketch same(0.01);
  obs::QuantileSketch shifted(0.01);
  std::normal_distribution<double> shifted_dist(2.5, 1.0);
  for (int i = 0; i < 20000; ++i) baseline.Insert(base_dist(rng));
  for (int i = 0; i < 5000; ++i) same.Insert(base_dist(rng));
  for (int i = 0; i < 5000; ++i) shifted.Insert(shifted_dist(rng));

  EXPECT_LT(obs::PopulationStabilityIndex(baseline, same), 0.1);
  EXPECT_GT(obs::PopulationStabilityIndex(baseline, shifted), 0.25);
  EXPECT_LT(obs::KolmogorovSmirnovDistance(baseline, same), 0.1);
  EXPECT_GT(obs::KolmogorovSmirnovDistance(baseline, shifted), 0.5);

  obs::QuantileSketch empty(0.01);
  EXPECT_EQ(obs::PopulationStabilityIndex(baseline, empty), 0.0);
  EXPECT_EQ(obs::KolmogorovSmirnovDistance(empty, baseline), 0.0);
}

TEST(Fingerprint, DegreeHistogramAndDistance) {
  std::vector<double> uniform = obs::DegreeHistogram({1, 2, 4, 8, 16});
  ASSERT_EQ(uniform.size(), static_cast<size_t>(obs::kDegreeBuckets));
  double total = 0.0;
  for (double mass : uniform) total += mass;
  EXPECT_NEAR(total, 1.0, 1e-12);

  EXPECT_DOUBLE_EQ(obs::HistogramDistance(uniform, uniform), 0.0);
  std::vector<double> point = obs::DegreeHistogram({0, 0, 0});
  const double distance = obs::HistogramDistance(uniform, point);
  EXPECT_GT(distance, 0.5);
  EXPECT_LE(distance, 1.0);
}

TEST(Fingerprint, BuildAndJsonRoundTrip) {
  std::vector<float> scores = {-1.5f, -0.2f, 0.0f, 0.4f, 2.5f};
  // Column 1 carries a NaN that must be skipped from the moments.
  std::vector<float> attributes = {
      1.0f, 2.0f,  //
      2.0f, std::numeric_limits<float>::quiet_NaN(),  //
      3.0f, 6.0f,  //
      4.0f, 8.0f,  //
      5.0f, 4.0f,  //
  };
  obs::ModelFingerprint fingerprint = obs::BuildFingerprint(
      scores, attributes.data(), 5, 2, {1, 2, 2, 3, 8});
  EXPECT_EQ(fingerprint.num_nodes, 5);
  EXPECT_EQ(fingerprint.scores.Count(), 5);
  ASSERT_EQ(fingerprint.attr_mean.size(), 2u);
  EXPECT_NEAR(fingerprint.attr_mean[0], 3.0, 1e-6);
  EXPECT_NEAR(fingerprint.attr_mean[1], 5.0, 1e-6);  // NaN row skipped.

  Result<obs::ModelFingerprint> restored =
      obs::ModelFingerprint::FromJson(fingerprint.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().ToJson().Dump(), fingerprint.ToJson().Dump());

  Result<obs::JsonValue> hostile = obs::ParseJson("{\"version\":99}");
  ASSERT_TRUE(hostile.ok());
  EXPECT_FALSE(obs::ModelFingerprint::FromJson(hostile.value()).ok());
}

obs::ModelFingerprint NormalFingerprint(int count, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  obs::ModelFingerprint fingerprint;
  for (int i = 0; i < count; ++i) fingerprint.scores.Insert(dist(rng));
  fingerprint.degree_hist = obs::DegreeHistogram({1, 2, 2, 4, 4, 4, 8});
  fingerprint.num_nodes = count;
  return fingerprint;
}

TEST(DriftMonitor, BaselineMissingUntilSet) {
  obs::DriftMonitor monitor;
  monitor.RecordScore(1.0);
  obs::DriftReport report = monitor.Evaluate();
  EXPECT_FALSE(report.baseline_present);
  EXPECT_EQ(report.score_psi, 0.0);
  EXPECT_EQ(monitor.ReportJson().at("status").string_value(),
            "baseline_missing");

  monitor.SetBaseline(NormalFingerprint(1000, 3));
  EXPECT_TRUE(monitor.has_baseline());
  EXPECT_EQ(monitor.ReportJson().at("status").string_value(), "ok");
}

TEST(DriftMonitor, DetectsScoreShiftAndRecovers) {
  obs::DriftConfig config;
  config.window_buckets = 3;
  config.min_window_count = 64;
  obs::DriftMonitor monitor(config);
  monitor.SetBaseline(NormalFingerprint(5000, 17));

  // In-distribution traffic: PSI below the conventional 0.1 "stable" line.
  std::mt19937 rng(19);
  std::normal_distribution<double> base_dist(0.0, 1.0);
  for (int i = 0; i < 2000; ++i) monitor.RecordScore(base_dist(rng));
  obs::DriftReport stable = monitor.Evaluate();
  EXPECT_TRUE(stable.baseline_present);
  EXPECT_EQ(stable.window_count, 2000);
  EXPECT_LT(stable.score_psi, 0.1);
  EXPECT_LT(stable.score_ks, 0.1);

  // Shifted traffic dominates the window after rotations retire the
  // in-distribution buckets.
  std::normal_distribution<double> shifted(3.0, 1.0);
  for (int r = 0; r < 3; ++r) {
    monitor.Rotate();
    for (int i = 0; i < 1000; ++i) monitor.RecordScore(shifted(rng));
  }
  obs::DriftReport drifted = monitor.Evaluate();
  EXPECT_GT(drifted.score_psi, 0.25);
  EXPECT_GT(drifted.score_ks, 0.5);

  // Recovery: in-distribution traffic flushes the shifted buckets out.
  for (int r = 0; r < 3; ++r) {
    monitor.Rotate();
    for (int i = 0; i < 1000; ++i) monitor.RecordScore(base_dist(rng));
  }
  obs::DriftReport recovered = monitor.Evaluate();
  EXPECT_LT(recovered.score_psi, 0.1);
}

TEST(DriftMonitor, SmallWindowReportsZeroAndTimedRotation) {
  obs::DriftConfig config;
  config.min_window_count = 100;
  config.rotate_seconds = 10.0;
  obs::DriftMonitor monitor(config);
  monitor.SetBaseline(NormalFingerprint(1000, 23));
  for (int i = 0; i < 10; ++i) monitor.RecordScore(50.0);
  // 10 wildly-shifted scores are below min_window_count: report 0, not
  // a noise-driven alarm.
  EXPECT_EQ(monitor.Evaluate().score_psi, 0.0);

  EXPECT_FALSE(monitor.MaybeRotate(100.0));  // First call arms the clock.
  EXPECT_FALSE(monitor.MaybeRotate(105.0));  // Not due yet.
  EXPECT_TRUE(monitor.MaybeRotate(111.0));
  EXPECT_FALSE(monitor.MaybeRotate(112.0));
}

TEST(DriftMonitor, StructuralDrift) {
  obs::DriftMonitor monitor;
  obs::ModelFingerprint fingerprint = NormalFingerprint(100, 29);
  monitor.SetBaseline(fingerprint);

  monitor.SetLiveDegreeHistogram(fingerprint.degree_hist);
  EXPECT_NEAR(monitor.Evaluate().degree_distance, 0.0, 1e-12);
  monitor.SetLiveDegreeHistogram(obs::DegreeHistogram({0, 0, 0, 0}));
  EXPECT_GT(monitor.Evaluate().degree_distance, 0.3);

  // Event mix: lifetime counts accumulate, the window mix is the delta
  // since the last rotation. A window of pure attribute updates against
  // an edge-heavy lifetime is a large total-variation distance.
  monitor.RecordEventCounts({1000, 0, 0, 0});
  monitor.Rotate();
  monitor.RecordEventCounts({1000, 0, 0, 900});
  const double mix = monitor.Evaluate().event_mix_distance;
  EXPECT_GT(mix, 0.4);
  EXPECT_LE(mix, 1.0);
}

TEST(AlertRules, ParserAcceptsValidAndRejectsHostileConfigs) {
  Result<std::vector<obs::AlertRule>> rules = obs::ParseAlertRules(
      "{\"rules\":[{\"name\":\"psi\",\"metric\":\"drift.score.psi\","
      "\"op\":\">\",\"threshold\":0.25,\"for_seconds\":5},"
      "{\"name\":\"ks.low\",\"metric\":\"drift.score.ks\",\"op\":\"<=\","
      "\"threshold\":0.9}]}");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules.value().size(), 2u);
  EXPECT_EQ(rules.value()[0].name, "psi");
  EXPECT_EQ(rules.value()[0].for_seconds, 5.0);
  EXPECT_TRUE(rules.value()[0].Breached(0.3));
  EXPECT_FALSE(rules.value()[0].Breached(0.25));

  const char* hostile[] = {
      "not json at all",
      "{\"rules\":42}",
      "{\"rules\":[{\"metric\":\"m\",\"op\":\">\",\"threshold\":1}]}",
      "{\"rules\":[{\"name\":\"\",\"metric\":\"m\",\"op\":\">\","
      "\"threshold\":1}]}",
      "{\"rules\":[{\"name\":\"a b\",\"metric\":\"m\",\"op\":\">\","
      "\"threshold\":1}]}",
      "{\"rules\":[{\"name\":\"a\",\"metric\":\"\",\"op\":\">\","
      "\"threshold\":1}]}",
      "{\"rules\":[{\"name\":\"a\",\"metric\":\"m\",\"op\":\"!=\","
      "\"threshold\":1}]}",
      "{\"rules\":[{\"name\":\"a\",\"metric\":\"m\",\"op\":\">\","
      "\"threshold\":\"high\"}]}",
      "{\"rules\":[{\"name\":\"a\",\"metric\":\"m\",\"op\":\">\","
      "\"threshold\":1,\"for_seconds\":-2}]}",
      "{\"rules\":[{\"name\":\"a\",\"metric\":\"m\",\"op\":\">\","
      "\"threshold\":1},{\"name\":\"a\",\"metric\":\"m\",\"op\":\">\","
      "\"threshold\":2}]}",
  };
  for (const char* config : hostile) {
    Result<std::vector<obs::AlertRule>> parsed =
        obs::ParseAlertRules(config);
    EXPECT_FALSE(parsed.ok()) << config;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << config;
  }
}

TEST(AlertEngine, ImmediateRuleFiresAndResolves) {
  Result<std::vector<obs::AlertRule>> rules = obs::ParseAlertRules(
      "{\"rules\":[{\"name\":\"psi\",\"metric\":\"psi\",\"op\":\">\","
      "\"threshold\":0.25}]}");
  ASSERT_TRUE(rules.ok());
  obs::AlertEngine engine(std::move(rules).value());

  double psi = 0.1;
  auto value_of = [&psi](const std::string&) { return psi; };
  EXPECT_TRUE(engine.Evaluate(value_of, 0.0).empty());

  psi = 0.5;  // for_seconds=0: breach fires on the same evaluation.
  std::vector<obs::AlertTransition> transitions =
      engine.Evaluate(value_of, 1.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].type, "firing");
  EXPECT_EQ(transitions[0].rule, "psi");
  EXPECT_DOUBLE_EQ(transitions[0].value, 0.5);
  EXPECT_TRUE(engine.Evaluate(value_of, 2.0).empty());  // Still firing.

  psi = 0.2;
  transitions = engine.Evaluate(value_of, 3.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].type, "resolved");
}

TEST(AlertEngine, ForDurationRequiresSustainedBreach) {
  Result<std::vector<obs::AlertRule>> rules = obs::ParseAlertRules(
      "{\"rules\":[{\"name\":\"slow\",\"metric\":\"m\",\"op\":\">=\","
      "\"threshold\":10,\"for_seconds\":5}]}");
  ASSERT_TRUE(rules.ok());
  obs::AlertEngine engine(std::move(rules).value());

  double value = 20.0;
  auto value_of = [&value](const std::string&) { return value; };
  EXPECT_TRUE(engine.Evaluate(value_of, 0.0).empty());  // Pending.
  EXPECT_TRUE(engine.Evaluate(value_of, 3.0).empty());  // Still pending.

  value = 5.0;  // Un-breach resets the pending clock without a transition.
  EXPECT_TRUE(engine.Evaluate(value_of, 4.0).empty());
  value = 20.0;
  EXPECT_TRUE(engine.Evaluate(value_of, 6.0).empty());
  std::vector<obs::AlertTransition> transitions =
      engine.Evaluate(value_of, 11.5);  // 5.5s of sustained breach.
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].type, "firing");
}

TEST(AlertEngine, UnavailableMetricResolvesFiringRule) {
  Result<std::vector<obs::AlertRule>> rules = obs::ParseAlertRules(
      "{\"rules\":[{\"name\":\"r\",\"metric\":\"gone\",\"op\":\">\","
      "\"threshold\":1}]}");
  ASSERT_TRUE(rules.ok());
  obs::AlertEngine engine(std::move(rules).value());
  double value = 5.0;
  auto value_of = [&value](const std::string&) { return value; };
  ASSERT_EQ(engine.Evaluate(value_of, 0.0).size(), 1u);

  value = std::numeric_limits<double>::quiet_NaN();
  std::vector<obs::AlertTransition> transitions =
      engine.Evaluate(value_of, 1.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].type, "resolved");
  const obs::JsonValue state = engine.StateJson();
  EXPECT_FALSE(state.at("rules")
                   .array()[0]
                   .at("metric_available")
                   .boolean());
}

TEST(AlertEngine, ConcurrentEvaluateAndRender) {
  // TSan target: the monitor loop evaluates while /debug/alerts renders.
  Result<std::vector<obs::AlertRule>> rules = obs::ParseAlertRules(
      "{\"rules\":[{\"name\":\"r\",\"metric\":\"m\",\"op\":\">\","
      "\"threshold\":0.5}]}");
  ASSERT_TRUE(rules.ok());
  obs::AlertEngine engine(std::move(rules).value());
  std::thread evaluator([&engine] {
    for (int i = 0; i < 500; ++i) {
      engine.Evaluate([i](const std::string&) { return i % 2 ? 1.0 : 0.0; },
                      static_cast<double>(i));
    }
  });
  std::thread renderer([&engine] {
    for (int i = 0; i < 200; ++i) {
      (void)engine.StateJson();
      engine.PublishMetrics();
    }
  });
  evaluator.join();
  renderer.join();
}

TEST(RegistryReadValue, FindsGaugesAndCountersWithoutCreating) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("drift_test.gauge")->Set(2.5);
  registry.GetCounter("drift_test.counter")->Add(7);
  ASSERT_TRUE(registry.ReadValue("drift_test.gauge").ok());
  EXPECT_DOUBLE_EQ(registry.ReadValue("drift_test.gauge").value(), 2.5);
  EXPECT_DOUBLE_EQ(registry.ReadValue("drift_test.counter").value(), 7.0);
  EXPECT_EQ(registry.ReadValue("drift_test.no_such").status().code(),
            StatusCode::kNotFound);
}

TEST(Webhook, UrlValidationIsLoopbackOnly) {
  int port = 0;
  std::string path;
  ASSERT_TRUE(
      serve::ParseWebhookUrl("http://127.0.0.1:9009/hook", &port, &path)
          .ok());
  EXPECT_EQ(port, 9009);
  EXPECT_EQ(path, "/hook");
  ASSERT_TRUE(serve::ParseWebhookUrl("http://localhost:80", &port, &path)
                  .ok());
  EXPECT_EQ(path, "/");

  for (const char* bad : {
           "https://127.0.0.1/hook",       // scheme
           "http://example.com/hook",      // SSRF: non-loopback host
           "http://127.0.0.2:80/",         // not the loopback literal
           "http://127.0.0.1:0/",          // port range
           "http://127.0.0.1:99999/",      // port range
           "http://127.0.0.1:banana/",     // port syntax
           "127.0.0.1:8080/hook",          // missing scheme
       }) {
    EXPECT_FALSE(serve::ParseWebhookUrl(bad, &port, &path).ok()) << bad;
  }
}

}  // namespace
}  // namespace vgod
