#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/rng.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

namespace ev = ::vgod::eval;

TEST(AucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(ev::Auc({0.1, 0.2, 0.9, 0.8}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, InvertedRanking) {
  EXPECT_DOUBLE_EQ(ev::Auc({0.9, 0.8, 0.1, 0.2}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, KnownPartialValue) {
  // Positives {0.8, 0.3}, negatives {0.5, 0.1}: pairs won = 3 of 4.
  EXPECT_DOUBLE_EQ(ev::Auc({0.8, 0.3, 0.5, 0.1}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, TiesCountHalf) {
  // All scores equal: AUC must be exactly 0.5.
  EXPECT_DOUBLE_EQ(ev::Auc({1.0, 1.0, 1.0, 1.0}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, MixedTies) {
  // Positive at 0.5 ties one negative: 1 win + 0.5 tie of 2 pairs.
  EXPECT_DOUBLE_EQ(ev::Auc({0.5, 0.5, 0.1}, {1, 0, 0}), 0.75);
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<double> scores(5000);
  std::vector<uint8_t> labels(5000);
  for (int i = 0; i < 5000; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = rng.Bernoulli(0.1);
  }
  EXPECT_NEAR(ev::Auc(scores, labels), 0.5, 0.05);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  Rng rng(2);
  std::vector<double> scores(500);
  std::vector<uint8_t> labels(500);
  for (int i = 0; i < 500; ++i) {
    scores[i] = rng.Normal();
    labels[i] = rng.Bernoulli(0.2);
  }
  if (std::count(labels.begin(), labels.end(), 1) == 0) labels[0] = 1;
  std::vector<double> transformed(500);
  for (int i = 0; i < 500; ++i) transformed[i] = std::exp(scores[i] * 3);
  EXPECT_DOUBLE_EQ(ev::Auc(scores, labels), ev::Auc(transformed, labels));
}

TEST(AucDeathTest, RequiresBothClasses) {
  EXPECT_DEATH(ev::Auc({1.0, 2.0}, {1, 1}), "negative");
  EXPECT_DEATH(ev::Auc({1.0, 2.0}, {0, 0}), "positive");
}

TEST(AucSubsetTest, ExcludesOtherOutliers) {
  // Nodes: subset outlier (0.9), other outlier (0.95), normals (0.1, 0.2).
  // The other outlier's high score must not count against the subset.
  std::vector<double> scores = {0.9, 0.95, 0.1, 0.2};
  std::vector<uint8_t> all = {1, 1, 0, 0};
  std::vector<uint8_t> subset = {1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ev::AucSubset(scores, all, subset), 1.0);
}

TEST(AucSubsetTest, MatchesAucWhenSubsetIsAll) {
  std::vector<double> scores = {0.9, 0.4, 0.1, 0.6};
  std::vector<uint8_t> all = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(ev::AucSubset(scores, all, all), ev::Auc(scores, all));
}

TEST(AucGapTest, SymmetricAndBoundedBelow) {
  EXPECT_DOUBLE_EQ(ev::AucGap(0.8, 0.8), 1.0);
  EXPECT_DOUBLE_EQ(ev::AucGap(0.9, 0.6), 1.5);
  EXPECT_DOUBLE_EQ(ev::AucGap(0.6, 0.9), 1.5);
  EXPECT_GE(ev::AucGap(0.513, 0.964), 1.0);
}

TEST(AucGapTest, TotalOverDegenerateInputs) {
  // A legitimately-zero AUC used to abort a whole bench run; the function
  // is now total: both zero is (vacuously) balanced, one zero is
  // infinitely unbalanced, and garbage inputs poison the gap with NaN
  // instead of killing the process.
  EXPECT_DOUBLE_EQ(ev::AucGap(0.0, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(ev::AucGap(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(ev::AucGap(0.0, 0.5)));
  EXPECT_TRUE(std::isnan(ev::AucGap(-0.1, 0.5)));
  EXPECT_TRUE(std::isnan(ev::AucGap(std::nan(""), 0.5)));
  EXPECT_TRUE(
      std::isnan(ev::AucGap(0.5, std::numeric_limits<double>::infinity())));
}

TEST(NonFiniteCheckTest, AcceptsFiniteAndNamesTheOffender) {
  EXPECT_TRUE(ev::NonFiniteCheck({0.0, -1.5, 1e12}, "scores").ok());
  EXPECT_TRUE(ev::NonFiniteCheck({}, "scores").ok());
  const Status bad = ev::NonFiniteCheck({1.0, std::nan(""), 2.0}, "scores");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("scores"), std::string::npos);
  EXPECT_NE(bad.message().find("index 1"), std::string::npos);
}

TEST(TryAucTest, MatchesAucOnValidInput) {
  Result<double> auc = ev::TryAuc({0.8, 0.3, 0.5, 0.1}, {1, 1, 0, 0});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(auc.value(), 0.75);
}

TEST(TryAucTest, ErrorsInsteadOfAborting) {
  // NaN scores: the pre-fix comparator fed NaN to std::sort-style pair
  // counting (UB); now an error.
  EXPECT_FALSE(ev::TryAuc({std::nan(""), 1.0}, {1, 0}).ok());
  EXPECT_FALSE(
      ev::TryAuc({std::numeric_limits<double>::infinity(), 1.0}, {1, 0})
          .ok());
  EXPECT_FALSE(ev::TryAuc({1.0, 2.0, 3.0}, {1, 0}).ok());  // Size mismatch.
  EXPECT_FALSE(ev::TryAuc({1.0, 2.0}, {1, 1}).ok());       // No negative.
  EXPECT_FALSE(ev::TryAuc({1.0, 2.0}, {0, 0}).ok());       // No positive.
}

TEST(AucDeathTest, NonFiniteScoresAbortWithContext) {
  EXPECT_DEATH(ev::Auc({std::nan(""), 1.0}, {1, 0}), "non-finite");
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(ev::AveragePrecision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}),
                   1.0);
}

TEST(AveragePrecisionTest, KnownHandComputedValue) {
  // Ranking desc: 0.9(+), 0.7(-), 0.5(+), 0.1(-).
  // Precisions at the positives: 1/1 and 2/3 -> AP = (1 + 2/3) / 2.
  EXPECT_DOUBLE_EQ(ev::AveragePrecision({0.9, 0.5, 0.7, 0.1}, {1, 1, 0, 0}),
                   (1.0 + 2.0 / 3.0) / 2.0);
}

TEST(AveragePrecisionTest, WorstRankingIsPositiveRate) {
  // All positives ranked last: AP collapses toward the base rate but the
  // final positive still contributes k_pos/n.
  // desc: 0.9(-), 0.8(-), 0.2(+), 0.1(+): AP = (1/3 + 2/4) / 2.
  EXPECT_DOUBLE_EQ(ev::AveragePrecision({0.2, 0.1, 0.9, 0.8}, {1, 1, 0, 0}),
                   (1.0 / 3.0 + 2.0 / 4.0) / 2.0);
}

TEST(AveragePrecisionTest, TiesBrokenByIndexDeterministically) {
  // Equal scores: earlier index ranks first, so the value is exactly
  // reproducible across platforms (matters for the matrix golden files).
  EXPECT_DOUBLE_EQ(ev::AveragePrecision({0.5, 0.5, 0.5}, {0, 1, 0}),
                   1.0 / 2.0);
  EXPECT_DOUBLE_EQ(ev::AveragePrecision({0.5, 0.5, 0.5}, {1, 0, 0}), 1.0);
}

TEST(AveragePrecisionTest, RandomScoresNearPositiveRate) {
  // With random scores AP concentrates around the positive base rate.
  Rng rng(3);
  const int n = 5000;
  std::vector<double> scores(n);
  std::vector<uint8_t> labels(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = i % 10 == 0;  // 10% positives.
  }
  const double ap = ev::AveragePrecision(scores, labels);
  EXPECT_NEAR(ap, 0.1, 0.03);
}

TEST(TryAveragePrecisionTest, ErrorsInsteadOfAborting) {
  EXPECT_FALSE(ev::TryAveragePrecision({std::nan(""), 1.0}, {1, 0}).ok());
  EXPECT_FALSE(ev::TryAveragePrecision({1.0, 2.0, 3.0}, {1, 0}).ok());
  EXPECT_FALSE(ev::TryAveragePrecision({1.0, 2.0}, {0, 0}).ok());
  // All-positive labels are legal for AP (it is 1 by construction).
  Result<double> all_positive = ev::TryAveragePrecision({1.0, 2.0}, {1, 1});
  ASSERT_TRUE(all_positive.ok());
  EXPECT_DOUBLE_EQ(all_positive.value(), 1.0);
}

TEST(MeanStdNormalizeTest, ZeroMeanUnitStd) {
  std::vector<double> normalized =
      ev::MeanStdNormalize({1.0, 2.0, 3.0, 4.0, 5.0});
  double mean = 0.0, var = 0.0;
  for (double v : normalized) mean += v / 5;
  for (double v : normalized) var += (v - mean) * (v - mean) / 5;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(MeanStdNormalizeTest, ConstantVectorBecomesZeros) {
  for (double v : ev::MeanStdNormalize({3.0, 3.0, 3.0})) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(MeanStdNormalizeTest, PreservesRanking) {
  std::vector<double> scores = {5.0, 1.0, 3.0};
  std::vector<double> normalized = ev::MeanStdNormalize(scores);
  EXPECT_GT(normalized[0], normalized[2]);
  EXPECT_GT(normalized[2], normalized[1]);
}

TEST(SumToUnitTest, SumsToOne) {
  std::vector<double> normalized = ev::SumToUnitNormalize({1.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(normalized[0] + normalized[1] + normalized[2], 1.0);
  EXPECT_DOUBLE_EQ(normalized[2], 0.5);
}

TEST(SumToUnitTest, AllZerosUnchanged) {
  for (double v : ev::SumToUnitNormalize({0.0, 0.0})) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(SumToUnitDeathTest, RejectsNegative) {
  EXPECT_DEATH(ev::SumToUnitNormalize({1.0, -1.0}), "non-negative");
}

TEST(RankNormalizeTest, FractionalRanks) {
  std::vector<double> ranks = ev::RankNormalize({10.0, 30.0, 20.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0 / 3);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0 / 3);
}

TEST(RankNormalizeTest, TiesGetAverageRank) {
  std::vector<double> ranks = ev::RankNormalize({5.0, 5.0, 1.0, 9.0});
  EXPECT_DOUBLE_EQ(ranks[0], ranks[1]);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5 / 4);
  EXPECT_DOUBLE_EQ(ranks[2], 0.25);
  EXPECT_DOUBLE_EQ(ranks[3], 1.0);
}

TEST(RankNormalizeTest, ScaleFree) {
  std::vector<double> a = {1.0, 100.0, 3.0, 2.0};
  std::vector<double> b = {0.01, 1e9, 0.03, 0.02};  // Same ordering.
  EXPECT_EQ(ev::RankNormalize(a), ev::RankNormalize(b));
}

TEST(RankNormalizeTest, TryVariantErrorsOnNonFiniteOrEmpty) {
  // A NaN in the comparator's input made the sort UB before the fix.
  EXPECT_FALSE(ev::TryRankNormalize({1.0, std::nan("")}).ok());
  EXPECT_FALSE(
      ev::TryRankNormalize({-std::numeric_limits<double>::infinity()}).ok());
  EXPECT_FALSE(ev::TryRankNormalize({}).ok());
  Result<std::vector<double>> ranks = ev::TryRankNormalize({10.0, 30.0});
  ASSERT_TRUE(ranks.ok());
  EXPECT_DOUBLE_EQ(ranks.value()[0], 0.5);
  EXPECT_DOUBLE_EQ(ranks.value()[1], 1.0);
}

TEST(RankNormalizeDeathTest, NonFiniteScoresAbortWithContext) {
  EXPECT_DEATH(ev::RankNormalize({std::nan("")}), "non-finite");
}

TEST(CombineScoresTest, WeightedSum) {
  std::vector<double> combined =
      ev::CombineScores({1.0, 2.0}, {10.0, 20.0}, 0.5);
  EXPECT_DOUBLE_EQ(combined[0], 6.0);
  EXPECT_DOUBLE_EQ(combined[1], 12.0);
}

TEST(TableTest, AlignedOutputContainsCells) {
  ev::Table table({"Model", "AUC"});
  table.AddRow().AddCell("VGOD").AddCell(0.9503, 4);
  table.AddRow().AddCell("DegNorm").AddCell(0.8928, 4);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("VGOD"), std::string::npos);
  EXPECT_NE(out.find("0.9503"), std::string::npos);
  EXPECT_NE(out.find("0.8928"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableDeathTest, CellBeforeRowAborts) {
  ev::Table table({"a"});
  EXPECT_DEATH(table.AddCell("x"), "AddRow");
}

}  // namespace
}  // namespace vgod
