// Tests for the crash-proofing layer (docs/ROBUSTNESS.md): the VGOD_FAULTS
// injection harness itself, bundle restore under systematic corruption
// (bit-flip, truncation, and injected short-read sweeps), the training
// divergence guard, the serving engine's non-finite score guard, and
// dataset IO under hostile headers. The invariant throughout: untrusted or
// injected failures produce a vgod::Status, never process death.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/faultinject.h"
#include "core/rng.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "detectors/arm.h"
#include "detectors/bundle.h"
#include "detectors/divergence.h"
#include "detectors/registry.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "eval/metrics.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "serve/engine.h"
#include "tensor/autograd.h"

namespace vgod {
namespace {

using namespace ::vgod::detectors;  // NOLINT: test-local convenience.

AttributedGraph TestGraph(int n = 80, uint64_t seed = 1) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 4;
  spec.avg_degree = 4.0;
  spec.attribute_dim = 12;
  spec.topic_dims_per_community = 3;
  Rng rng(seed);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

VbmConfig TinyVbm() {
  VbmConfig config;
  config.hidden_dim = 8;
  config.epochs = 3;
  return config;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Saves a trained tiny-VBM bundle and returns its path.
std::string SaveTinyVbmBundle(const std::string& name) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  VGOD_CHECK(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  VGOD_CHECK(bundle.ok());
  const std::string path = TempPath(name);
  VGOD_CHECK(SaveBundle(bundle.value(), path).ok());
  return path;
}

// Every test that arms rules must leave the process disarmed, or the
// injection leaks into unrelated tests in this binary.
class FaultsTest : public ::testing::Test {
 protected:
  void TearDown() override { faults::Disarm(); }
};

// ---------------------------------------------------------------------------
// The injection harness itself: spec parsing and trigger semantics.

TEST_F(FaultsTest, ArmEnablesAndDisarmClears) {
  EXPECT_TRUE(faults::Arm("bundle.read=fail").ok());
  EXPECT_TRUE(faults::Enabled());
  EXPECT_TRUE(faults::ShouldFail("bundle.read"));
  EXPECT_FALSE(faults::ShouldFail("some.other.site"));
  faults::Disarm();
  EXPECT_FALSE(faults::Enabled());
  EXPECT_FALSE(faults::ShouldFail("bundle.read"));
}

TEST_F(FaultsTest, FailAtNSkipsEarlierHits) {
  ASSERT_TRUE(faults::Arm("io=fail@3").ok());
  EXPECT_FALSE(faults::ShouldFail("io"));  // Hit 1.
  EXPECT_FALSE(faults::ShouldFail("io"));  // Hit 2.
  EXPECT_TRUE(faults::ShouldFail("io"));   // Hit 3: threshold reached.
  EXPECT_TRUE(faults::ShouldFail("io"));   // Hit 4: stays failing.
  EXPECT_EQ(faults::TriggerCount("io"), 2);
}

TEST_F(FaultsTest, NanActionInjectsOnlyNan) {
  ASSERT_TRUE(faults::Arm("score=nan").ok());
  EXPECT_FALSE(faults::ShouldFail("score"));  // Wrong action kind.
  EXPECT_TRUE(std::isnan(faults::MaybeNan("score", 1.5)));
  EXPECT_EQ(faults::MaybeNan("unarmed", 1.5), 1.5);
}

TEST_F(FaultsTest, MultiRuleSpecArmsEverySite) {
  ASSERT_TRUE(faults::Arm("a=fail,b=nan;c=fail@2").ok());
  EXPECT_EQ(faults::ArmedSites().size(), 3u);
}

TEST_F(FaultsTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(faults::Arm("bogus").ok());
  EXPECT_FALSE(faults::Arm("=fail").ok());
  EXPECT_FALSE(faults::Arm("site=explode").ok());
  EXPECT_FALSE(faults::Arm("site=fail@0").ok());
  EXPECT_FALSE(faults::Arm("site=fail@abc").ok());
  EXPECT_FALSE(faults::Arm("site=fail@-1").ok());
  // Empty spec is a valid "nothing armed".
  EXPECT_TRUE(faults::Arm("").ok());
  EXPECT_FALSE(faults::Enabled());
}

// ---------------------------------------------------------------------------
// Bundle restore under systematic corruption. Every variant must come back
// as a Status; a single crash fails the whole sweep.

TEST(BundleCorruptionTest, BitFlipSweepAlwaysErrorsNeverCrashes) {
  const std::string path = SaveTinyVbmBundle("bitflip_sweep.vgodb");
  const std::string original = ReadFileBytes(path);
  ASSERT_GT(original.size(), 64u);

  const std::string flipped_path = TempPath("bitflip_sweep_flipped.vgodb");
  for (size_t i = 0; i < original.size(); ++i) {
    std::string bytes = original;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x5a);
    WriteFileBytes(flipped_path, bytes);
    Result<ModelBundle> loaded = LoadBundle(flipped_path);
    // The FNV-1a state transition is injective per byte, so any single
    // flip in the checksummed region changes the digest; flips in the
    // magic/version/stored-digest fields fail their own checks.
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " was accepted";
  }
}

TEST(BundleCorruptionTest, TruncationSweepAlwaysErrorsNeverCrashes) {
  const std::string path = SaveTinyVbmBundle("truncation_sweep.vgodb");
  const std::string original = ReadFileBytes(path);
  ASSERT_GT(original.size(), 64u);

  const std::string cut_path = TempPath("truncation_sweep_cut.vgodb");
  for (size_t len = 0; len < original.size(); ++len) {
    WriteFileBytes(cut_path, original.substr(0, len));
    Result<ModelBundle> loaded = LoadBundle(cut_path);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len
                              << " bytes was accepted";
  }
}

TEST_F(FaultsTest, InjectedShortReadSweepErrorsAtEveryRead) {
  const std::string path = SaveTinyVbmBundle("short_read_sweep.vgodb");

  // A tiny VBM bundle takes at least 13 ReadRaw calls (magic, version,
  // two length-prefixed strings, count, and 2 tensors x 3 reads); failing
  // each one in turn exercises every truncation branch of LoadBundle.
  for (int k = 1; k <= 12; ++k) {
    ASSERT_TRUE(faults::Arm("bundle.read=fail@" + std::to_string(k)).ok());
    Result<ModelBundle> loaded = LoadBundle(path);
    EXPECT_FALSE(loaded.ok()) << "short read at call " << k
                              << " was accepted";
    EXPECT_GE(faults::TriggerCount("bundle.read"), 1);
  }

  faults::Disarm();
  EXPECT_TRUE(LoadBundle(path).ok());
}

// ---------------------------------------------------------------------------
// Hostile bundle configs: values must be range-checked before they reach a
// double -> int cast (UB when out of range) or size an allocation.

TEST(BundleCorruptionTest, RestoreRejectsOutOfRangeHiddenDim) {
  const std::string path = SaveTinyVbmBundle("hostile_config.vgodb");
  Result<ModelBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok());

  for (const char* hostile :
       {"{\"hidden_dim\":-5}", "{\"hidden_dim\":1e300}",
        "{\"hidden_dim\":0}"}) {
    ModelBundle tampered = loaded.value();
    Result<obs::JsonValue> config = obs::ParseJson(hostile);
    ASSERT_TRUE(config.ok());
    tampered.config = std::move(config).value();
    Result<std::unique_ptr<OutlierDetector>> restored =
        MakeDetectorFromBundle(tampered);
    EXPECT_FALSE(restored.ok()) << hostile;
    if (!restored.ok()) {
      EXPECT_NE(restored.status().message().find("hidden_dim"),
                std::string::npos);
    }
  }
}

TEST(BundleCorruptionTest, ArmRestoreRejectsOutOfRangeLayerCount) {
  Arm model;
  ModelBundle bundle;
  bundle.detector = "ARM";
  Result<obs::JsonValue> config =
      obs::ParseJson("{\"hidden_dim\":8,\"num_layers\":1e9}");
  ASSERT_TRUE(config.ok());
  bundle.config = std::move(config).value();
  const Status restored = model.RestoreFromBundle(bundle);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.message().find("num_layers"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Divergence guard: rollback semantics, directly and through Fit().

TEST(DivergenceGuardTest, SnapshotsAndRollsBack) {
  Variable param = Variable::Parameter(Tensor::Zeros(2, 2));
  DivergenceGuard guard({param});

  obs::EpochRecord record;
  record.detector = "TEST";
  record.planned_epochs = 3;
  record.epoch = 1;
  record.loss = 0.5;
  record.grad_norm = 1.0;
  ASSERT_TRUE(guard.Check(record).ok());
  EXPECT_EQ(guard.last_good_epoch(), 1);

  // An optimizer step after the snapshot...
  Tensor stepped = Tensor::Zeros(2, 2);
  stepped.SetAt(0, 0, 42.0f);
  param.SetValue(stepped);

  // ...then the next epoch diverges: the step must be undone.
  record.epoch = 2;
  record.loss = std::nan("");
  const Status diverged = guard.Check(record);
  ASSERT_FALSE(diverged.ok());
  EXPECT_NE(diverged.message().find("diverged at epoch 2/3"),
            std::string::npos);
  EXPECT_NE(diverged.message().find("rolled back to epoch 1"),
            std::string::npos);
  EXPECT_EQ(param.value().At(0, 0), 0.0f);
}

TEST(DivergenceGuardTest, NoSnapshotMeansNoRollback) {
  Variable param = Variable::Parameter(Tensor::Zeros(1, 1));
  DivergenceGuard guard({param});
  obs::EpochRecord record;
  record.detector = "TEST";
  record.epoch = 1;
  record.planned_epochs = 1;
  record.loss = std::numeric_limits<double>::infinity();
  const Status diverged = guard.Check(record);
  ASSERT_FALSE(diverged.ok());
  EXPECT_NE(diverged.message().find("no finite epoch to roll back to"),
            std::string::npos);
  EXPECT_EQ(guard.last_good_epoch(), 0);
}

TEST_F(FaultsTest, VbmFitSurvivesInjectedLossNan) {
  ASSERT_TRUE(faults::Arm("vbm.loss=nan@2").ok());
  AttributedGraph graph = TestGraph();
  Vbm model(TinyVbm());
  const Status fitted = model.Fit(graph);
  ASSERT_FALSE(fitted.ok());
  EXPECT_NE(fitted.message().find("diverged at epoch 2"), std::string::npos);
  EXPECT_EQ(model.train_stats().epochs, 1);  // Last finite epoch.
  faults::Disarm();

  // The rollback left epoch-1 parameters installed: the model still
  // produces finite scores instead of NaN garbage.
  const DetectorOutput output = model.Score(graph);
  ASSERT_EQ(output.score.size(), static_cast<size_t>(graph.num_nodes()));
  EXPECT_TRUE(eval::NonFiniteCheck(output.score, "post-rollback").ok());
}

TEST_F(FaultsTest, ArmFitSurvivesInjectedLossNan) {
  ASSERT_TRUE(faults::Arm("arm.loss=nan").ok());
  AttributedGraph graph = TestGraph();
  ArmConfig config;
  config.hidden_dim = 8;
  config.epochs = 3;
  Arm model(config);
  const Status fitted = model.Fit(graph);
  ASSERT_FALSE(fitted.ok());
  // Epoch 1 already diverges, so there is nothing to roll back to.
  EXPECT_NE(fitted.message().find("diverged at epoch 1"), std::string::npos);
  EXPECT_EQ(model.train_stats().epochs, 0);
}

// ---------------------------------------------------------------------------
// Serving engine: a detector emitting non-finite scores must become an
// Internal error plus a serve.errors.nonfinite_scores bump, not a served
// NaN payload.

TEST_F(FaultsTest, EngineRejectsInjectedNanScores) {
  AttributedGraph graph = TestGraph();
  auto detector = std::make_unique<DegNorm>();
  ASSERT_TRUE(detector->Fit(graph).ok());
  serve::ScoringEngine engine(std::move(detector), graph, {});
  ASSERT_TRUE(engine.Start().ok());

  obs::Counter* nonfinite = obs::MetricsRegistry::Global().GetCounter(
      "serve.errors.nonfinite_scores");
  const int64_t before = nonfinite->Value();

  ASSERT_TRUE(faults::Arm("serve.score=nan").ok());
  Result<serve::ScoreResult> poisoned = engine.ScoreNodes({0, 1});
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal);
  EXPECT_NE(poisoned.status().message().find("unusable score"),
            std::string::npos);
  EXPECT_GT(nonfinite->Value(), before);

  faults::Disarm();
  Result<serve::ScoreResult> clean = engine.ScoreNodes({0, 1});
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
  engine.Shutdown();
}

// ---------------------------------------------------------------------------
// Dataset IO under hostile files and injected failures.

TEST(DatasetHostileInputTest, RejectsImplausibleHeader) {
  const std::string path = TempPath("hostile_header.graph");
  // 2e9 x 1e6 would be a petabyte-scale allocation if the header were
  // trusted.
  std::ofstream(path) << "vgod-graph 2000000000 1000000 0 0\n";
  Result<AttributedGraph> loaded = datasets::LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("implausible"), std::string::npos);

  std::ofstream(path) << "vgod-graph -3 4 0 0\n";
  EXPECT_FALSE(datasets::LoadGraph(path).ok());

  std::ofstream(path) << "vgod-graph what no 0 0\n";
  EXPECT_FALSE(datasets::LoadGraph(path).ok());
}

TEST(DatasetHostileInputTest, RejectsNonFiniteAttributes) {
  // Depending on the standard library, "nan" either parses to a NaN
  // (caught by the isfinite gate) or fails float extraction (caught by
  // the malformed-row gate); both must be a Status, never a poisoned
  // attribute tensor.
  const std::string path = TempPath("hostile_nan.graph");
  std::ofstream(path) << "vgod-graph 2 2 0 0\n1 2\nnan 4\nedges\n0 1\n";
  EXPECT_FALSE(datasets::LoadGraph(path).ok());
  std::ofstream(path) << "vgod-graph 2 2 0 0\n1 2\ninf 4\nedges\n0 1\n";
  EXPECT_FALSE(datasets::LoadGraph(path).ok());
}

TEST(DatasetHostileInputTest, RejectsTruncatedNodeTable) {
  const std::string path = TempPath("hostile_truncated.graph");
  std::ofstream(path) << "vgod-graph 3 2 0 0\n1 2\n3 4\n";
  EXPECT_FALSE(datasets::LoadGraph(path).ok());
}

TEST(DatasetHostileInputTest, RejectsMalformedEdgeList) {
  const std::string path = TempPath("hostile_edges.graph");
  std::ofstream(path) << "vgod-graph 2 2 0 0\n1 2\n3 4\nedges\n0 1\nnot an"
                      << " edge\n";
  Result<AttributedGraph> loaded = datasets::LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("edge list"), std::string::npos);
}

TEST_F(FaultsTest, InjectedDatasetReadFailure) {
  const std::string path = TempPath("injected_read.graph");
  std::ofstream(path) << "vgod-graph 2 2 0 0\n1 2\n3 4\nedges\n0 1\n";
  ASSERT_TRUE(datasets::LoadGraph(path).ok());

  ASSERT_TRUE(faults::Arm("dataset.read=fail").ok());
  Result<AttributedGraph> loaded = datasets::LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("injected"), std::string::npos);
}

}  // namespace
}  // namespace vgod
