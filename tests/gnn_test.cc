#include <gtest/gtest.h>

#include <memory>

#include "core/parallel.h"
#include "core/rng.h"
#include "gnn/graph_autograd.h"
#include "gnn/layers.h"
#include "graph/graph.h"
#include "graph/graph_ops.h"
#include "graph/sampling.h"
#include "tensor/gradcheck.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

std::shared_ptr<const AttributedGraph> TestGraph(bool self_loops = false) {
  // 6 nodes, mixed degrees (one isolated node to hit the empty-row paths).
  Rng rng(21);
  Tensor attrs = Tensor::RandomNormal(6, 3, 0, 1, &rng);
  AttributedGraph g =
      std::move(AttributedGraph::FromEdgeList(
                    6, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}}, attrs))
          .value();
  return std::make_shared<const AttributedGraph>(
      self_loops ? g.WithSelfLoops() : g);
}

std::shared_ptr<const AttributedGraph> DirectedTestGraph() {
  GraphBuilder builder(5);
  builder.SetUndirected(false);
  builder.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(4, 0).AddEdge(4,
                                                                          2);
  Rng rng(23);
  builder.SetAttributes(Tensor::RandomNormal(5, 3, 0, 1, &rng));
  return std::make_shared<const AttributedGraph>(
      std::move(builder.Build()).value());
}

// --- graph autograd ops: value checks ---

TEST(GraphAutogradTest, SpmmForwardMatchesKernel) {
  auto g = TestGraph();
  Rng rng(1);
  Tensor h = Tensor::RandomNormal(6, 4, 0, 1, &rng);
  Variable out = ag::Spmm(g, {}, Variable::Constant(h));
  EXPECT_LT(kernels::MaxAbsDiff(out.value(), graph_ops::Spmm(*g, {}, h)),
            1e-6f);
}

TEST(GraphAutogradTest, NeighborMeanForwardMatchesKernel) {
  auto g = TestGraph();
  Rng rng(2);
  Tensor h = Tensor::RandomNormal(6, 4, 0, 1, &rng);
  Variable out = ag::NeighborMean(g, Variable::Constant(h));
  EXPECT_LT(
      kernels::MaxAbsDiff(out.value(), graph_ops::NeighborMean(*g, h)),
      1e-6f);
}

TEST(GraphAutogradTest, VarianceForwardMatchesKernel) {
  auto g = TestGraph();
  Rng rng(3);
  Tensor h = Tensor::RandomNormal(6, 4, 0, 1, &rng);
  Variable out = ag::NeighborVarianceScore(g, Variable::Constant(h));
  EXPECT_LT(kernels::MaxAbsDiff(out.value(),
                                graph_ops::NeighborVarianceScore(*g, h)),
            1e-6f);
}

// --- graph autograd ops: gradcheck ---

TEST(GraphAutogradGradTest, Spmm) {
  auto g = TestGraph();
  Rng rng(4);
  std::vector<float> weights(g->num_directed_edges());
  for (float& w : weights) w = static_cast<float>(rng.Uniform(0.1, 1.0));
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::Square(ag::Spmm(g, weights, p[0])));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphAutogradGradTest, SpmmDirectedGraph) {
  auto g = DirectedTestGraph();
  Rng rng(5);
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(5, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::Square(ag::Spmm(g, {}, p[0])));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphAutogradGradTest, NeighborMean) {
  auto g = TestGraph();
  Rng rng(6);
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::Square(ag::NeighborMean(g, p[0])));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphAutogradGradTest, NeighborVarianceScore) {
  auto g = TestGraph();
  Rng rng(7);
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::NeighborVarianceScore(g, p[0]));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphAutogradGradTest, NeighborVarianceOnDirectedNegativeGraph) {
  // The VBM loss differentiates variance through the (directed) negative
  // network; the backward must respect edge direction.
  Rng rng(8);
  auto base = TestGraph();
  auto neg = std::make_shared<const AttributedGraph>(
      BuildNegativeGraph(*base, &rng));
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::NeighborVarianceScore(neg, p[0]));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphAutogradGradTest, GatAggregate) {
  auto g = TestGraph(/*self_loops=*/true);
  Rng rng(9);
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng)),
      Variable::Parameter(Tensor::RandomNormal(6, 1, 0, 1, &rng)),
      Variable::Parameter(Tensor::RandomNormal(6, 1, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(
            ag::Square(ag::GatAggregate(g, p[0], p[1], p[2])));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

// --- graph autograd ops: gradcheck with the vgod::par pool active ---
//
// The CSR backwards are rewritten as transpose-CSR gathers when the pool
// is on (docs/PARALLELISM.md); re-run the finite-difference checks with a
// pool width that does not divide the 6-node test graphs.

class PooledGradTest : public ::testing::Test {
 protected:
  void SetUp() override { par::SetNumThreads(4); }
  void TearDown() override { par::SetNumThreads(par::DefaultNumThreads()); }
};

TEST_F(PooledGradTest, SpmmUnderPool) {
  auto g = TestGraph();
  Rng rng(4);
  std::vector<float> weights(g->num_directed_edges());
  for (float& w : weights) w = static_cast<float>(rng.Uniform(0.1, 1.0));
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::Square(ag::Spmm(g, weights, p[0])));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_F(PooledGradTest, NeighborMeanUnderPool) {
  auto g = TestGraph();
  Rng rng(6);
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::Square(ag::NeighborMean(g, p[0])));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_F(PooledGradTest, NeighborVarianceScoreUnderPool) {
  auto g = TestGraph();
  Rng rng(7);
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::NeighborVarianceScore(g, p[0]));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_F(PooledGradTest, GatAggregateUnderPool) {
  auto g = TestGraph(/*self_loops=*/true);
  Rng rng(9);
  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(6, 3, 0, 1, &rng)),
      Variable::Parameter(Tensor::RandomNormal(6, 1, 0, 1, &rng)),
      Variable::Parameter(Tensor::RandomNormal(6, 1, 0, 1, &rng))};
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(
            ag::Square(ag::GatAggregate(g, p[0], p[1], p[2])));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphAutogradTest, GatAttentionIsConvexCombination) {
  // With identical inputs s, the output of GatAggregate must equal s for
  // every non-isolated node (attention rows sum to one).
  auto g = TestGraph(/*self_loops=*/true);
  Tensor s = Tensor::Full(6, 3, 2.5f);
  Variable out = ag::GatAggregate(g, Variable::Constant(s),
                                  Variable::Constant(Tensor::Zeros(6, 1)),
                                  Variable::Constant(Tensor::Zeros(6, 1)));
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(out.value().At(i, 0), 2.5f, 1e-5f);
  }
}

// --- layers ---

class ConvLayerTest : public ::testing::TestWithParam<gnn::GnnKind> {};

TEST_P(ConvLayerTest, ForwardShape) {
  Rng rng(31);
  auto layer = gnn::MakeConv(GetParam(), 3, 8, &rng);
  auto g = TestGraph(/*self_loops=*/true);
  Variable out =
      layer->Forward(g, Variable::Constant(g->attributes()));
  EXPECT_EQ(out.rows(), 6);
  EXPECT_EQ(out.cols(), 8);
  EXPECT_GT(layer->NumParameters(), 0);
}

TEST_P(ConvLayerTest, GradCheckThroughLayer) {
  Rng rng(33);
  auto layer = gnn::MakeConv(GetParam(), 3, 4, &rng);
  auto g = TestGraph(/*self_loops=*/true);
  Tensor input = g->attributes();
  std::vector<Variable> params = layer->Parameters();
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Variable>&) {
        return ag::MeanAll(
            ag::Square(layer->Forward(g, Variable::Constant(input))));
      },
      params);
  EXPECT_TRUE(result.ok) << gnn::GnnKindName(GetParam()) << ": "
                         << result.detail;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ConvLayerTest,
                         ::testing::Values(gnn::GnnKind::kGcn,
                                           gnn::GnnKind::kGat,
                                           gnn::GnnKind::kGin,
                                           gnn::GnnKind::kSage),
                         [](const ::testing::TestParamInfo<gnn::GnnKind>& i) {
                           return gnn::GnnKindName(i.param);
                         });

TEST(GatConvTest, MultiHeadConcatenatesWidths) {
  Rng rng(35);
  gnn::GatConv layer(3, 8, &rng, /*heads=*/2);
  auto g = TestGraph(/*self_loops=*/true);
  Variable out = layer.Forward(g, Variable::Constant(g->attributes()));
  EXPECT_EQ(out.cols(), 8);
  // 2 heads x (weight + two attention vectors).
  EXPECT_EQ(layer.Parameters().size(), 6u);
}

TEST(GatConvDeathTest, HeadsMustDivideWidth) {
  Rng rng(35);
  EXPECT_DEATH(gnn::GatConv(3, 7, &rng, 2), "heads");
}

TEST(GcnConvTest, ConstantSignalPreservedOnRegularGraph) {
  // On a self-looped k-regular graph the symmetric normalization averages
  // to exactly the input for constant signals (eigenvector of A_hat).
  Rng rng(37);
  // 4-cycle: every node degree 2 (+self = 3).
  AttributedGraph g =
      std::move(AttributedGraph::FromEdgeList(
                    4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, Tensor::Ones(4, 1)))
          .value()
          .WithSelfLoops();
  auto shared = std::make_shared<const AttributedGraph>(g);
  Variable h = ag::Spmm(shared, graph_ops::GcnNormWeights(*shared),
                        Variable::Constant(Tensor::Ones(4, 2)));
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(h.value().At(i, 0), 1.0f, 1e-5f);
}

TEST(GnnKindTest, NamesRoundTrip) {
  EXPECT_STREQ(gnn::GnnKindName(gnn::GnnKind::kGcn), "GCN");
  EXPECT_STREQ(gnn::GnnKindName(gnn::GnnKind::kGat), "GAT");
  EXPECT_STREQ(gnn::GnnKindName(gnn::GnnKind::kGin), "GIN");
  EXPECT_STREQ(gnn::GnnKindName(gnn::GnnKind::kSage), "SAGE");
}

}  // namespace
}  // namespace vgod
