#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "gnn/parameter_free.h"
#include "graph/graph.h"
#include "graph/graph_ops.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

namespace go = ::vgod::graph_ops;

AttributedGraph Path4() {
  // 0-1-2-3 path with distinctive attributes.
  Tensor attrs = Tensor::FromVector({1, 0, 0, 1, 1, 1, 2, 2}, 4, 2);
  return std::move(AttributedGraph::FromEdgeList(
                       4, {{0, 1}, {1, 2}, {2, 3}}, attrs))
      .value();
}

TEST(GraphOpsTest, DegreeVector) {
  Tensor deg = go::DegreeVector(Path4());
  EXPECT_FLOAT_EQ(deg.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(deg.At(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(deg.At(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(deg.At(3, 0), 1.0f);
}

TEST(GraphOpsTest, GcnNormWeightsValues) {
  AttributedGraph g = Path4().WithSelfLoops();
  std::vector<float> w = go::GcnNormWeights(g);
  ASSERT_EQ(static_cast<int64_t>(w.size()), g.num_directed_edges());
  // Node 0 has degree 2 (self + 1), node 1 degree 3: w(0->1) = 1/sqrt(6).
  int64_t e = g.row_ptr()[0];
  // Neighbors of 0 are sorted: {0, 1}.
  EXPECT_NEAR(w[e], 1.0f / 2.0f, 1e-6f);          // 0->0: 1/sqrt(2*2)
  EXPECT_NEAR(w[e + 1], 1.0f / std::sqrt(6.0f), 1e-6f);  // 0->1
}

TEST(GraphOpsTest, SpmmMatchesDenseAdjacency) {
  Rng rng(3);
  AttributedGraph g = Path4();
  Tensor h = Tensor::RandomNormal(4, 3, 0, 1, &rng);
  Tensor sparse = go::Spmm(g, {}, h);
  Tensor dense = kernels::MatMul(go::DenseAdjacency(g), h);
  EXPECT_LT(kernels::MaxAbsDiff(sparse, dense), 1e-5f);
}

TEST(GraphOpsTest, SpmmWithWeights) {
  AttributedGraph g = Path4();
  std::vector<float> weights(g.num_directed_edges(), 0.5f);
  Tensor h = Tensor::Ones(4, 1);
  Tensor out = go::Spmm(g, weights, h);
  EXPECT_FLOAT_EQ(out.At(1, 0), 1.0f);  // 2 neighbors * 0.5
  EXPECT_FLOAT_EQ(out.At(0, 0), 0.5f);
}

TEST(GraphOpsTest, NeighborMeanHandComputed) {
  AttributedGraph g = Path4();
  Tensor mean = go::NeighborMean(g, g.attributes());
  // Node 1 neighbors {0, 2}: mean = ((1,0)+(1,1))/2 = (1, 0.5).
  EXPECT_FLOAT_EQ(mean.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(mean.At(1, 1), 0.5f);
  // Node 0 neighbor {1}: copy of (0, 1).
  EXPECT_FLOAT_EQ(mean.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(mean.At(0, 1), 1.0f);
}

TEST(GraphOpsTest, NeighborMeanIsolatedNodeZero) {
  Result<AttributedGraph> g =
      AttributedGraph::FromEdgeList(3, {{0, 1}}, Tensor::Ones(3, 2));
  Tensor mean = go::NeighborMean(g.value(), g.value().attributes());
  EXPECT_FLOAT_EQ(mean.At(2, 0), 0.0f);
  EXPECT_FLOAT_EQ(mean.At(2, 1), 0.0f);
}

TEST(GraphOpsTest, NeighborVarianceHandComputed) {
  AttributedGraph g = Path4();
  Tensor var = go::NeighborVarianceScore(g, g.attributes());
  // Node 1 neighbors (1,0),(1,1): per-dim variance (0, 0.25), L1 = 0.25.
  EXPECT_NEAR(var.At(1, 0), 0.25f, 1e-6f);
  // Degree-1 nodes have zero variance.
  EXPECT_FLOAT_EQ(var.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(var.At(3, 0), 0.0f);
}

TEST(GraphOpsTest, NeighborVarianceZeroForIdenticalNeighbors) {
  // Star where all leaves share one attribute vector.
  Tensor attrs = Tensor::FromVector({0, 0, 5, 5, 5, 5, 5, 5}, 4, 2);
  Result<AttributedGraph> g = AttributedGraph::FromEdgeList(
      4, {{0, 1}, {0, 2}, {0, 3}}, attrs);
  Tensor var = go::NeighborVarianceScore(g.value(), attrs);
  EXPECT_FLOAT_EQ(var.At(0, 0), 0.0f);
}

TEST(GraphOpsTest, NeighborVarianceGrowsWithSpread) {
  Tensor tight = Tensor::FromVector({0, 0, 1, 1, 1.1f, 1.1f, 0.9f, 0.9f}, 4, 2);
  Tensor wide = Tensor::FromVector({0, 0, 5, -5, -5, 5, 0, 9}, 4, 2);
  Result<AttributedGraph> g = AttributedGraph::FromEdgeList(
      4, {{0, 1}, {0, 2}, {0, 3}}, tight);
  const float tight_var =
      go::NeighborVarianceScore(g.value(), tight).At(0, 0);
  const float wide_var = go::NeighborVarianceScore(g.value(), wide).At(0, 0);
  EXPECT_GT(wide_var, 10 * tight_var);
}

TEST(GraphOpsTest, MeanMinusConvMatchFusedKernel) {
  // The explicit MeanConv/MinusConv layers (paper Fig 5) must agree with
  // the fused NeighborVarianceScore kernel.
  Rng rng(17);
  std::vector<std::pair<int, int>> edges;
  for (int e = 0; e < 120; ++e) {
    int u = static_cast<int>(rng.UniformInt(40));
    int v = static_cast<int>(rng.UniformInt(40));
    if (u != v) edges.emplace_back(u, v);
  }
  Tensor attrs = Tensor::RandomNormal(40, 8, 0, 1, &rng);
  AttributedGraph g =
      std::move(AttributedGraph::FromEdgeList(40, edges, attrs)).value();
  Tensor mean = gnn::MeanConv(g, attrs);
  Tensor via_layers = gnn::MinusConv(g, attrs, mean);
  Tensor fused = go::NeighborVarianceScore(g, attrs);
  EXPECT_LT(kernels::MaxAbsDiff(via_layers, fused), 1e-4f);
}

TEST(GraphOpsTest, EdgeHomophilyExtremes) {
  AttributedGraph g = Path4();
  g.SetCommunities({0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(go::EdgeHomophily(g), 1.0);
  g.SetCommunities({0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(go::EdgeHomophily(g), 0.0);
  g.SetCommunities({0, 0, 1, 1});
  EXPECT_NEAR(go::EdgeHomophily(g), 4.0 / 6.0, 1e-9);
}

TEST(GraphOpsTest, DenseAdjacencySymmetric) {
  AttributedGraph g = Path4();
  Tensor a = go::DenseAdjacency(g);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a.At(i, i), 0.0f);
    for (int j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(a.At(i, j), a.At(j, i));
  }
  EXPECT_FLOAT_EQ(a.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(a.At(0, 2), 0.0f);
}

TEST(GraphOpsTest, RowNormalizeAttributes) {
  Tensor attrs = Tensor::FromVector({2, 2, 0, 0, 3, 1}, 3, 2);
  Tensor normalized = go::RowNormalizeAttributes(attrs);
  EXPECT_FLOAT_EQ(normalized.At(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(normalized.At(2, 0), 0.75f);
  // Zero rows unchanged.
  EXPECT_FLOAT_EQ(normalized.At(1, 0), 0.0f);
  // Original untouched.
  EXPECT_FLOAT_EQ(attrs.At(0, 0), 2.0f);
}

}  // namespace
}  // namespace vgod
