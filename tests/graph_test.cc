#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rng.h"
#include "graph/graph.h"
#include "graph/sampling.h"

namespace vgod {
namespace {

AttributedGraph TriangleWithTail() {
  // 0-1-2 triangle, 2-3 tail.
  Result<AttributedGraph> g = AttributedGraph::FromEdgeList(
      4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, Tensor::Ones(4, 2));
  return std::move(g).value();
}

TEST(GraphTest, BasicProperties) {
  AttributedGraph g = TriangleWithTail();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_directed_edges(), 8);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(2), 3);
  EXPECT_EQ(g.Degree(3), 1);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
}

TEST(GraphTest, NeighborsSorted) {
  AttributedGraph g = TriangleWithTail();
  auto neighbors = g.Neighbors(2);
  EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
  EXPECT_EQ(neighbors.size(), 3u);
}

TEST(GraphTest, HasEdgeSymmetric) {
  AttributedGraph g = TriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphTest, DuplicateEdgesDeduplicated) {
  Result<AttributedGraph> g = AttributedGraph::FromEdgeList(
      3, {{0, 1}, {0, 1}, {1, 0}}, Tensor::Ones(3, 1));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_directed_edges(), 2);
}

TEST(GraphTest, SelfLoopsDroppedByDefault) {
  Result<AttributedGraph> g = AttributedGraph::FromEdgeList(
      3, {{0, 0}, {0, 1}}, Tensor::Ones(3, 1));
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g.value().HasEdge(0, 0));
  EXPECT_EQ(g.value().num_directed_edges(), 2);
}

TEST(GraphTest, OutOfRangeEdgeRejected) {
  Result<AttributedGraph> g =
      AttributedGraph::FromEdgeList(3, {{0, 5}}, Tensor::Ones(3, 1));
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kOutOfRange);
}

TEST(GraphTest, AttributeRowMismatchRejected) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1).SetAttributes(Tensor::Ones(4, 2));
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphTest, CommunitySizeMismatchRejected) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1).SetCommunities({0, 1});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphTest, DirectedBuilderKeepsAsymmetry) {
  GraphBuilder builder(3);
  builder.SetUndirected(false).AddEdge(0, 1).AddEdge(1, 2);
  AttributedGraph g = std::move(builder.Build()).value();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Degree(2), 0);
}

TEST(GraphTest, WithSelfLoopsAddsExactlyOnePerNode) {
  AttributedGraph g = TriangleWithTail();
  AttributedGraph sl = g.WithSelfLoops();
  EXPECT_EQ(sl.num_directed_edges(), g.num_directed_edges() + 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(sl.HasEdge(i, i));
    EXPECT_EQ(sl.Degree(i), g.Degree(i) + 1);
  }
  // Idempotent.
  EXPECT_EQ(sl.WithSelfLoops().num_directed_edges(), sl.num_directed_edges());
}

TEST(GraphTest, WithSelfLoopsKeepsNeighborsSorted) {
  AttributedGraph sl = TriangleWithTail().WithSelfLoops();
  for (int i = 0; i < sl.num_nodes(); ++i) {
    auto neighbors = sl.Neighbors(i);
    EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
  }
}

TEST(GraphTest, UndirectedEdgeListHalvesDirected) {
  AttributedGraph g = TriangleWithTail();
  auto edges = g.UndirectedEdgeList();
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphTest, LabelsRoundTrip) {
  AttributedGraph g = TriangleWithTail();
  g.SetCommunities({0, 0, 1, 1});
  g.SetOutlierLabels({0, 1, 0, 1});
  EXPECT_EQ(g.NumCommunities(), 2);
  EXPECT_EQ(g.outlier_labels()[1], 1);
  // Self-loop copy carries metadata.
  AttributedGraph sl = g.WithSelfLoops();
  EXPECT_TRUE(sl.has_communities());
  EXPECT_TRUE(sl.has_outlier_labels());
}

TEST(GraphTest, EmptyGraph) {
  Result<AttributedGraph> g =
      AttributedGraph::FromEdgeList(0, {}, Tensor::Zeros(0, 3));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0);
  EXPECT_EQ(g.value().num_directed_edges(), 0);
}

// --- sampling ---

AttributedGraph SmallRandomGraph(int n, double avg_degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  const int m = static_cast<int>(n * avg_degree / 2);
  for (int e = 0; e < m; ++e) {
    const int u = static_cast<int>(rng.UniformInt(n));
    const int v = static_cast<int>(rng.UniformInt(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return std::move(
             AttributedGraph::FromEdgeList(n, edges, Tensor::Ones(n, 2)))
      .value();
}

TEST(SamplingTest, NegativeGraphAvoidsRealEdgesAndSelf) {
  AttributedGraph g = SmallRandomGraph(60, 6, 3);
  Rng rng(5);
  AttributedGraph neg = BuildNegativeGraph(g, &rng);
  EXPECT_EQ(neg.num_nodes(), g.num_nodes());
  for (int u = 0; u < neg.num_nodes(); ++u) {
    for (int32_t v : neg.Neighbors(u)) {
      EXPECT_FALSE(g.HasEdge(u, v)) << u << "->" << v;
      EXPECT_NE(u, v);
    }
  }
}

TEST(SamplingTest, NegativeGraphMatchesDegrees) {
  AttributedGraph g = SmallRandomGraph(80, 5, 7);
  Rng rng(9);
  AttributedGraph neg = BuildNegativeGraph(g, &rng);
  for (int u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(neg.Degree(u), g.Degree(u)) << "node " << u;
  }
}

TEST(SamplingTest, NegativeGraphCarriesAttributes) {
  AttributedGraph g = SmallRandomGraph(30, 4, 11);
  Rng rng(13);
  AttributedGraph neg = BuildNegativeGraph(g, &rng);
  EXPECT_TRUE(neg.has_attributes());
  EXPECT_EQ(neg.attribute_dim(), g.attribute_dim());
}

TEST(SamplingTest, NegativeGraphNearCompleteNeighborhood) {
  // A 4-clique: each node's forbidden set is everything, so the negative
  // graph must cap at zero negative neighbors instead of hanging.
  Result<AttributedGraph> g = AttributedGraph::FromEdgeList(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, Tensor::Ones(4, 1));
  Rng rng(1);
  AttributedGraph neg = BuildNegativeGraph(g.value(), &rng);
  EXPECT_EQ(neg.num_directed_edges(), 0);
}

TEST(SamplingTest, RandomWalkStaysOnGraph) {
  AttributedGraph g = SmallRandomGraph(50, 4, 17);
  Rng rng(19);
  std::vector<int> walk = RandomWalk(g, 7, 10, &rng);
  EXPECT_EQ(walk.size(), 11u);
  EXPECT_EQ(walk[0], 7);
  for (size_t i = 1; i < walk.size(); ++i) {
    // Each hop is an edge, unless the walker was stuck on an isolated node.
    if (walk[i] != walk[i - 1]) {
      EXPECT_TRUE(g.HasEdge(walk[i - 1], walk[i]));
    }
  }
}

TEST(SamplingTest, RandomWalkIsolatedNodeStays) {
  Result<AttributedGraph> g =
      AttributedGraph::FromEdgeList(3, {{0, 1}}, Tensor::Ones(3, 1));
  Rng rng(1);
  std::vector<int> walk = RandomWalk(g.value(), 2, 5, &rng);
  for (int node : walk) EXPECT_EQ(node, 2);
}

TEST(SamplingTest, BlockDiagonalBatchStructure) {
  AttributedGraph g = TriangleWithTail();
  BlockDiagonalBatch batch =
      MakeBlockDiagonalBatch(g, {{0, 1, 2}, {2, 3}, {3}});
  EXPECT_EQ(batch.graph.num_nodes(), 6);
  EXPECT_EQ(batch.group_offsets, (std::vector<int>{0, 3, 5}));
  // Group 0 is the triangle: all three induced edges present.
  EXPECT_TRUE(batch.graph.HasEdge(0, 1));
  EXPECT_TRUE(batch.graph.HasEdge(1, 2));
  EXPECT_TRUE(batch.graph.HasEdge(0, 2));
  // Group 1 is the 2-3 tail edge, relabeled to 3-4.
  EXPECT_TRUE(batch.graph.HasEdge(3, 4));
  // No cross-group edges.
  EXPECT_FALSE(batch.graph.HasEdge(2, 3));
  // Attribute rows copied per block.
  EXPECT_EQ(batch.graph.attributes().rows(), 6);
}

TEST(SamplingTest, BlockDiagonalBatchDuplicateNodes) {
  AttributedGraph g = TriangleWithTail();
  BlockDiagonalBatch batch = MakeBlockDiagonalBatch(g, {{0, 1}, {0, 1}});
  // Duplicates get independent rows and their own edges.
  EXPECT_TRUE(batch.graph.HasEdge(0, 1));
  EXPECT_TRUE(batch.graph.HasEdge(2, 3));
  EXPECT_FALSE(batch.graph.HasEdge(1, 2));
}

}  // namespace
}  // namespace vgod
