#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "injection/injection.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

using ::vgod::injection::DistanceKind;
using ::vgod::injection::GroupedInjectionResult;
using ::vgod::injection::InjectCliqueSizeGroups;
using ::vgod::injection::InjectContextualOutliers;
using ::vgod::injection::InjectionResult;
using ::vgod::injection::InjectJointStructuralOutliers;
using ::vgod::injection::InjectStandard;
using ::vgod::injection::InjectStructuralByEdgeReplacement;
using ::vgod::injection::InjectStructuralOutliers;

AttributedGraph BaseGraph(int n = 400, uint64_t seed = 1) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 4;
  spec.avg_degree = 4.0;
  spec.attribute_dim = 48;
  spec.topic_dims_per_community = 10;
  Rng rng(seed);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

int CountLabels(const std::vector<uint8_t>& labels) {
  return std::accumulate(labels.begin(), labels.end(), 0);
}

TEST(StructuralInjectionTest, CountsAndLabels) {
  AttributedGraph g = BaseGraph();
  Rng rng(2);
  InjectionResult result =
      std::move(InjectStructuralOutliers(g, 3, 5, &rng)).value();
  EXPECT_EQ(CountLabels(result.structural), 15);
  EXPECT_EQ(CountLabels(result.contextual), 0);
  EXPECT_EQ(result.combined, result.structural);
  EXPECT_EQ(result.graph.outlier_labels(), result.combined);
}

TEST(StructuralInjectionTest, OutliersFormCliques) {
  AttributedGraph g = BaseGraph();
  Rng rng(3);
  InjectionResult result =
      std::move(InjectStructuralOutliers(g, 2, 6, &rng)).value();
  // Every structural outlier gains >= q-1 degree (clique edges).
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (result.structural[i]) {
      EXPECT_GE(result.graph.Degree(i), 5) << "node " << i;
      EXPECT_GE(result.graph.Degree(i), g.Degree(i));
    } else {
      EXPECT_EQ(result.graph.Degree(i), g.Degree(i)) << "node " << i;
    }
  }
}

TEST(StructuralInjectionTest, AttributesUntouched) {
  AttributedGraph g = BaseGraph();
  Rng rng(4);
  InjectionResult result =
      std::move(InjectStructuralOutliers(g, 3, 5, &rng)).value();
  EXPECT_EQ(kernels::MaxAbsDiff(result.graph.attributes(), g.attributes()),
            0.0f);
}

TEST(StructuralInjectionTest, DegreeLeakageExists) {
  // The core observation of paper §IV-A2: injected structural outliers have
  // far higher degree than the graph average.
  AttributedGraph g = BaseGraph();
  Rng rng(5);
  InjectionResult result =
      std::move(InjectStructuralOutliers(g, 3, 15, &rng)).value();
  double outlier_deg = 0.0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (result.structural[i]) outlier_deg += result.graph.Degree(i);
  }
  outlier_deg /= 45.0;
  EXPECT_GT(outlier_deg, 3.0 * g.AverageDegree());
}

TEST(StructuralInjectionTest, RejectsOversizedRequest) {
  AttributedGraph g = BaseGraph(50);
  Rng rng(6);
  EXPECT_FALSE(InjectStructuralOutliers(g, 10, 15, &rng).ok());
}

TEST(StructuralInjectionTest, RejectsBadParameters) {
  AttributedGraph g = BaseGraph(100);
  Rng rng(7);
  EXPECT_FALSE(InjectStructuralOutliers(g, 0, 5, &rng).ok());
  EXPECT_FALSE(InjectStructuralOutliers(g, 2, 1, &rng).ok());
}

TEST(ContextualInjectionTest, CountsAndTopologyPreserved) {
  AttributedGraph g = BaseGraph();
  Rng rng(8);
  InjectionResult result =
      std::move(
          InjectContextualOutliers(g, 20, 50, DistanceKind::kEuclidean, &rng))
          .value();
  EXPECT_EQ(CountLabels(result.contextual), 20);
  EXPECT_EQ(result.graph.col_idx(), g.col_idx());
  EXPECT_EQ(result.graph.num_directed_edges(), g.num_directed_edges());
}

TEST(ContextualInjectionTest, VictimAttributesReplacedByExistingRows) {
  AttributedGraph g = BaseGraph();
  Rng rng(9);
  InjectionResult result =
      std::move(
          InjectContextualOutliers(g, 15, 50, DistanceKind::kEuclidean, &rng))
          .value();
  for (int i = 0; i < g.num_nodes(); ++i) {
    const bool changed =
        kernels::MaxAbsDiff(
            Tensor::FromVector(result.graph.attributes().RowToVector(i), 1,
                               g.attribute_dim()),
            Tensor::FromVector(g.attributes().RowToVector(i), 1,
                               g.attribute_dim())) > 0;
    if (!result.contextual[i]) {
      EXPECT_FALSE(changed) << "non-victim " << i << " was modified";
    }
  }
}

TEST(ContextualInjectionTest, EuclideanLargeKCausesNormLeakage) {
  // Theorem 1: with k=50 and Euclidean distance, the chosen replacement
  // vectors are biased toward large L2 norms.
  AttributedGraph g = BaseGraph(600, 11);
  Rng rng(12);
  InjectionResult result =
      std::move(
          InjectContextualOutliers(g, 40, 50, DistanceKind::kEuclidean, &rng))
          .value();
  const Tensor norms = kernels::RowNorms(result.graph.attributes());
  double outlier_norm = 0.0, normal_norm = 0.0;
  int n_out = 0, n_in = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (result.contextual[i]) {
      outlier_norm += norms.At(i, 0);
      ++n_out;
    } else {
      normal_norm += norms.At(i, 0);
      ++n_in;
    }
  }
  EXPECT_GT(outlier_norm / n_out, 1.15 * (normal_norm / n_in));
}

TEST(ContextualInjectionTest, SmallKMitigatesLeakage) {
  // Paper Fig 3 (left): shrinking the candidate set weakens the norm bias.
  AttributedGraph g = BaseGraph(600, 13);
  auto norm_gap = [&g](int k, uint64_t seed) {
    Rng rng(seed);
    InjectionResult result =
        std::move(
            InjectContextualOutliers(g, 40, k, DistanceKind::kEuclidean, &rng))
            .value();
    const Tensor norms = kernels::RowNorms(result.graph.attributes());
    double outlier = 0.0, normal = 0.0;
    int n_out = 0, n_in = 0;
    for (int i = 0; i < g.num_nodes(); ++i) {
      if (result.contextual[i]) {
        outlier += norms.At(i, 0);
        ++n_out;
      } else {
        normal += norms.At(i, 0);
        ++n_in;
      }
    }
    return (outlier / n_out) / (normal / n_in);
  };
  // Average over seeds to stabilize the comparison.
  double gap_k1 = 0.0, gap_k50 = 0.0;
  for (uint64_t s = 0; s < 5; ++s) {
    gap_k1 += norm_gap(1, 100 + s) / 5;
    gap_k50 += norm_gap(50, 200 + s) / 5;
  }
  EXPECT_GT(gap_k50, gap_k1);
}

TEST(ContextualInjectionTest, RejectsBadParameters) {
  AttributedGraph g = BaseGraph(100);
  Rng rng(14);
  EXPECT_FALSE(
      InjectContextualOutliers(g, 0, 50, DistanceKind::kEuclidean, &rng).ok());
  EXPECT_FALSE(
      InjectContextualOutliers(g, 5, 0, DistanceKind::kEuclidean, &rng).ok());
  EXPECT_FALSE(
      InjectContextualOutliers(g, 5, 100, DistanceKind::kEuclidean, &rng)
          .ok());
}

TEST(StandardInjectionTest, DisjointTypesAndCombinedLabels) {
  AttributedGraph g = BaseGraph();
  Rng rng(15);
  InjectionResult result = std::move(InjectStandard(g, 3, 5, 50, &rng)).value();
  EXPECT_EQ(CountLabels(result.structural), 15);
  EXPECT_EQ(CountLabels(result.contextual), 15);
  EXPECT_EQ(CountLabels(result.combined), 30);
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_FALSE(result.structural[i] && result.contextual[i])
        << "node " << i << " is both types";
    EXPECT_EQ(result.combined[i], result.structural[i] | result.contextual[i]);
  }
}

TEST(EdgeReplacementTest, DegreePreserved) {
  // The paper's new injection (§VI-D1) removes the degree leakage: every
  // victim keeps its degree.
  AttributedGraph g = BaseGraph(500, 17);
  Rng rng(18);
  InjectionResult result =
      std::move(InjectStructuralByEdgeReplacement(g, 50, &rng)).value();
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (result.structural[i]) {
      EXPECT_EQ(result.graph.Degree(i), g.Degree(i)) << "victim " << i;
    }
  }
}

TEST(EdgeReplacementTest, NewNeighborsFromOtherCommunities) {
  AttributedGraph g = BaseGraph(500, 19);
  Rng rng(20);
  InjectionResult result =
      std::move(InjectStructuralByEdgeReplacement(g, 40, &rng)).value();
  const auto& comm = result.graph.communities();
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (!result.structural[i]) continue;
    for (int32_t j : result.graph.Neighbors(i)) {
      // A victim's neighbors either come from other communities or are
      // other victims that rewired onto it.
      if (!result.structural[j]) {
        EXPECT_NE(comm[i], comm[j]) << "victim " << i << " neighbor " << j;
      }
    }
  }
}

TEST(EdgeReplacementTest, RequiresCommunities) {
  Result<AttributedGraph> g =
      AttributedGraph::FromEdgeList(10, {{0, 1}, {1, 2}}, Tensor::Ones(10, 4));
  Rng rng(21);
  EXPECT_EQ(
      InjectStructuralByEdgeReplacement(g.value(), 2, &rng).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(CliqueGroupsTest, GroupsAreDisjointAndSized) {
  AttributedGraph g = BaseGraph(800, 23);
  Rng rng(24);
  GroupedInjectionResult result =
      std::move(InjectCliqueSizeGroups(g, {3, 5, 10, 15}, 16, &rng)).value();
  ASSERT_EQ(result.groups.size(), 4u);
  std::vector<uint8_t> seen(g.num_nodes(), 0);
  for (const auto& group : result.groups) {
    EXPECT_GE(static_cast<int>(group.size()), 16);
    for (int node : group) {
      EXPECT_FALSE(seen[node]) << "node " << node << " in two groups";
      seen[node] = 1;
      EXPECT_TRUE(result.combined[node]);
    }
  }
}

TEST(CliqueGroupsTest, GroupDegreeScalesWithCliqueSize) {
  AttributedGraph g = BaseGraph(800, 25);
  Rng rng(26);
  GroupedInjectionResult result =
      std::move(InjectCliqueSizeGroups(g, {3, 15}, 15, &rng)).value();
  auto mean_degree = [&result](const std::vector<int>& group) {
    double total = 0.0;
    for (int node : group) total += result.graph.Degree(node);
    return total / group.size();
  };
  EXPECT_GT(mean_degree(result.groups[1]), mean_degree(result.groups[0]) + 5);
}

// Validates a graph's CSR invariants directly: monotone row_ptr covering
// col_idx, neighbor lists sorted and unique, no self loops, and symmetric
// adjacency (every stored edge mirrored).
void ExpectValidCsr(const AttributedGraph& g) {
  const auto& row_ptr = g.row_ptr();
  const auto& col_idx = g.col_idx();
  ASSERT_EQ(static_cast<int>(row_ptr.size()), g.num_nodes() + 1);
  ASSERT_EQ(row_ptr.front(), 0);
  ASSERT_EQ(static_cast<size_t>(row_ptr.back()), col_idx.size());
  for (int i = 0; i < g.num_nodes(); ++i) {
    ASSERT_LE(row_ptr[i], row_ptr[i + 1]) << "row " << i;
    for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      const int32_t j = col_idx[e];
      ASSERT_GE(j, 0);
      ASSERT_LT(j, g.num_nodes());
      EXPECT_NE(j, i) << "self loop at " << i;
      if (e > row_ptr[i]) {
        EXPECT_LT(col_idx[e - 1], j) << "unsorted/dup neighbor of " << i;
      }
      // Mirrored edge present (undirected storage).
      const auto nbrs = g.Neighbors(j);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), i) != nbrs.end())
          << "edge " << i << "->" << j << " not mirrored";
    }
  }
}

TEST(JointStructuralInjectionTest, CountsAndLabels) {
  AttributedGraph g = BaseGraph();
  Rng rng(30);
  InjectionResult result =
      std::move(InjectJointStructuralOutliers(g, 12, 6, &rng)).value();
  EXPECT_EQ(CountLabels(result.structural), 12);
  EXPECT_EQ(CountLabels(result.contextual), 0);
  EXPECT_EQ(result.combined, result.structural);
  EXPECT_EQ(result.graph.outlier_labels(), result.combined);
}

TEST(JointStructuralInjectionTest, VictimsGainDegreeOthersAlmostDont) {
  AttributedGraph g = BaseGraph();
  Rng rng(31);
  const int m = 8;
  const int count = 10;
  InjectionResult result =
      std::move(InjectJointStructuralOutliers(g, count, m, &rng)).value();
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (result.structural[i]) {
      // A victim gains at most its own m edges plus one from each other
      // victim that sampled it as a target (gain below m is possible when
      // sampled targets were already neighbors).
      EXPECT_GT(result.graph.Degree(i), g.Degree(i)) << "victim " << i;
      EXPECT_LE(result.graph.Degree(i), g.Degree(i) + m + count - 1)
          << "victim " << i;
    } else {
      // A non-victim's degree only grows if a victim wired onto it.
      EXPECT_GE(result.graph.Degree(i), g.Degree(i)) << "node " << i;
    }
  }
}

TEST(JointStructuralInjectionTest, NoDenseBlockAmongVictims) {
  // The distinguishing property vs clique injection: victims scatter their
  // edges across the whole graph instead of wiring to each other, so the
  // victim-victim edge count stays far below the q-clique's q*(q-1)/2.
  AttributedGraph g = BaseGraph(600, 32);
  Rng rng(33);
  const int count = 15;
  InjectionResult result =
      std::move(InjectJointStructuralOutliers(g, count, 5, &rng)).value();
  int victim_victim_edges = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (!result.structural[i]) continue;
    for (int32_t j : result.graph.Neighbors(i)) {
      if (result.structural[j]) ++victim_victim_edges;
    }
  }
  EXPECT_LT(victim_victim_edges / 2, count * (count - 1) / 4)
      << "victims form a near-clique";
}

TEST(JointStructuralInjectionTest, AttributesUntouched) {
  AttributedGraph g = BaseGraph();
  Rng rng(34);
  InjectionResult result =
      std::move(InjectJointStructuralOutliers(g, 10, 5, &rng)).value();
  EXPECT_EQ(kernels::MaxAbsDiff(result.graph.attributes(), g.attributes()),
            0.0f);
}

TEST(JointStructuralInjectionTest, AdversarialCorners) {
  AttributedGraph g = BaseGraph(60);
  Rng rng(35);
  // m = 0, negative, or >= n; count = 0 or more victims than nodes.
  EXPECT_FALSE(InjectJointStructuralOutliers(g, 5, 0, &rng).ok());
  EXPECT_FALSE(InjectJointStructuralOutliers(g, 5, -3, &rng).ok());
  EXPECT_FALSE(InjectJointStructuralOutliers(g, 5, 60, &rng).ok());
  EXPECT_FALSE(InjectJointStructuralOutliers(g, 5, 1000, &rng).ok());
  EXPECT_FALSE(InjectJointStructuralOutliers(g, 0, 5, &rng).ok());
  EXPECT_FALSE(InjectJointStructuralOutliers(g, 61, 5, &rng).ok());
  // Extreme-but-legal corners succeed: every node a victim, and m = n-1
  // (wire to everyone).
  EXPECT_TRUE(InjectJointStructuralOutliers(g, 60, 2, &rng).ok());
  EXPECT_TRUE(InjectJointStructuralOutliers(g, 2, 59, &rng).ok());
}

TEST(JointStructuralInjectionTest, FuzzCsrInvariantsHold) {
  // Randomized sweep: whatever (n, count, m, seed) combination we draw,
  // the injected graph must keep a valid deduplicated self-loop-free
  // symmetric CSR and exactly `count` labeled victims.
  Rng fuzz(0xfa6ad);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 50 + static_cast<int>(fuzz.UniformInt(150));
    AttributedGraph g = BaseGraph(n, 1000 + trial);
    const int count = 1 + static_cast<int>(fuzz.UniformInt(n));
    const int m = 1 + static_cast<int>(fuzz.UniformInt(n - 1));
    Rng rng(2000 + trial);
    Result<InjectionResult> result =
        InjectJointStructuralOutliers(g, count, m, &rng);
    ASSERT_TRUE(result.ok()) << "n=" << n << " count=" << count << " m=" << m
                             << ": " << result.status().ToString();
    EXPECT_EQ(CountLabels(result.value().structural), count);
    ExpectValidCsr(result.value().graph);
  }
}

TEST(JointStructuralInjectionTest, Deterministic) {
  AttributedGraph g = BaseGraph(300, 36);
  Rng rng_a(77), rng_b(77);
  InjectionResult a =
      std::move(InjectJointStructuralOutliers(g, 9, 4, &rng_a)).value();
  InjectionResult b =
      std::move(InjectJointStructuralOutliers(g, 9, 4, &rng_b)).value();
  EXPECT_EQ(a.combined, b.combined);
  EXPECT_EQ(a.graph.col_idx(), b.graph.col_idx());
}

TEST(InjectionDeterminismTest, SameSeedSameResult) {
  AttributedGraph g = BaseGraph(300, 27);
  Rng rng_a(42), rng_b(42);
  InjectionResult a = std::move(InjectStandard(g, 2, 5, 20, &rng_a)).value();
  InjectionResult b = std::move(InjectStandard(g, 2, 5, 20, &rng_b)).value();
  EXPECT_EQ(a.combined, b.combined);
  EXPECT_EQ(a.graph.col_idx(), b.graph.col_idx());
  EXPECT_EQ(
      kernels::MaxAbsDiff(a.graph.attributes(), b.graph.attributes()), 0.0f);
}

}  // namespace
}  // namespace vgod
