// End-to-end pipelines mirroring the paper's experiments at test scale:
// dataset simulation -> outlier injection -> training -> evaluation.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "datasets/registry.h"
#include "detectors/registry.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "injection/injection.h"

namespace vgod {
namespace {

using ::vgod::datasets::Dataset;
using ::vgod::detectors::DetectorOptions;
using ::vgod::detectors::DetectorOutput;
using ::vgod::detectors::MakeDetector;
using ::vgod::detectors::OutlierDetector;

constexpr double kTestScale = 0.2;

injection::InjectionResult InjectedDataset(const std::string& name,
                                           uint64_t seed) {
  Dataset dataset = std::move(datasets::MakeDataset(name, kTestScale, seed))
                        .value();
  Rng rng(seed + 100);
  const int p = 2, q = 10, k = 50;
  return std::move(injection::InjectStandard(dataset.graph, p, q, k, &rng))
      .value();
}

TEST(IntegrationTest, LeakageProbesBeatRandomOnEveryInjectionDataset) {
  // The Fig 2 phenomenon end-to-end: Deg on structural and L2Norm on
  // contextual outliers both crush the random baseline.
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    injection::InjectionResult injected = InjectedDataset(name, 31);
    detectors::Deg deg;
    detectors::L2Norm l2;
    ASSERT_TRUE(deg.Fit(injected.graph).ok());
    ASSERT_TRUE(l2.Fit(injected.graph).ok());
    EXPECT_GT(eval::AucSubset(deg.Score(injected.graph).score,
                              injected.combined, injected.structural),
              0.85)
        << name;
    EXPECT_GT(eval::AucSubset(l2.Score(injected.graph).score,
                              injected.combined, injected.contextual),
              0.7)
        << name;
  }
}

TEST(IntegrationTest, VgodPipelineOnCoraSim) {
  injection::InjectionResult injected = InjectedDataset("cora", 33);
  DetectorOptions options;
  options.self_loop = true;
  options.epoch_scale = 0.5;
  std::unique_ptr<OutlierDetector> vgod =
      std::move(MakeDetector("VGOD", options)).value();
  ASSERT_TRUE(vgod->Fit(injected.graph).ok());
  DetectorOutput out = vgod->Score(injected.graph);
  const double auc = eval::Auc(out.score, injected.combined);
  EXPECT_GT(auc, 0.8);
  const double str =
      eval::AucSubset(out.score, injected.combined, injected.structural);
  const double ctx =
      eval::AucSubset(out.score, injected.combined, injected.contextual);
  EXPECT_LT(eval::AucGap(str, ctx), 1.5);
}

TEST(IntegrationTest, VgodDetectsLabeledWeiboOutliers) {
  // The labeled-outlier study (paper Table X): no injection at all.
  Dataset weibo =
      std::move(datasets::MakeDataset("weibo", kTestScale, 35)).value();
  DetectorOptions options;
  options.self_loop = true;
  options.row_normalize_attributes = true;
  options.epoch_scale = 0.5;
  std::unique_ptr<OutlierDetector> vgod =
      std::move(MakeDetector("VGOD", options)).value();
  ASSERT_TRUE(vgod->Fit(weibo.graph).ok());
  DetectorOutput out = vgod->Score(weibo.graph);
  EXPECT_GT(eval::Auc(out.score, weibo.graph.outlier_labels()), 0.8);
  // The structural component must carry signal (cohesive diverse clusters).
  EXPECT_GT(eval::Auc(out.structural_score, weibo.graph.outlier_labels()),
            0.7);
}

TEST(IntegrationTest, InductiveScoringOnFreshInjection) {
  // Paper Appendix B: train on one injected graph, score a graph injected
  // with a different seed.
  Dataset dataset = std::move(datasets::MakeDataset("cora", kTestScale, 37))
                        .value();
  Rng rng_train(1), rng_test(2);
  injection::InjectionResult train_graph =
      std::move(injection::InjectStandard(dataset.graph, 2, 10, 50,
                                          &rng_train))
          .value();
  injection::InjectionResult test_graph =
      std::move(injection::InjectStandard(dataset.graph, 2, 10, 50,
                                          &rng_test))
          .value();
  DetectorOptions options;
  options.self_loop = true;
  options.epoch_scale = 0.5;
  std::unique_ptr<OutlierDetector> vgod =
      std::move(MakeDetector("VGOD", options)).value();
  ASSERT_TRUE(vgod->supports_inductive());
  ASSERT_TRUE(vgod->Fit(train_graph.graph).ok());
  DetectorOutput out = vgod->Score(test_graph.graph);
  EXPECT_GT(eval::Auc(out.score, test_graph.combined), 0.75);
}

TEST(IntegrationTest, VbmRobustToSmallCliqueSizes) {
  // Fig 6's robustness claim in miniature: VBM keeps detecting at q=3
  // where the degree signal has faded.
  Dataset dataset = std::move(datasets::MakeDataset("citeseer", kTestScale,
                                                    39))
                        .value();
  Rng rng(40);
  injection::GroupedInjectionResult injected =
      std::move(injection::InjectCliqueSizeGroups(dataset.graph, {3, 15},
                                                  /*group_size=*/10, &rng))
          .value();
  detectors::VbmConfig config;
  config.hidden_dim = 32;
  config.epochs = 8;
  detectors::Vbm vbm(config);
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  std::vector<double> scores = vbm.Score(injected.graph).score;

  auto group_mask = [&](int g) {
    std::vector<uint8_t> mask(injected.graph.num_nodes(), 0);
    for (int node : injected.groups[g]) mask[node] = 1;
    return mask;
  };
  const double auc_q3 =
      eval::AucSubset(scores, injected.combined, group_mask(0));
  const double auc_q15 =
      eval::AucSubset(scores, injected.combined, group_mask(1));
  EXPECT_GT(auc_q3, 0.7);
  EXPECT_GT(auc_q15, 0.85);
}

TEST(IntegrationTest, NewInjectionDefeatsDegreeButNotVbm) {
  // Paper Table VI in miniature.
  Dataset dataset =
      std::move(datasets::MakeDataset("cora", kTestScale, 41)).value();
  Rng rng(42);
  const int count = dataset.graph.num_nodes() / 10;
  injection::InjectionResult injected =
      std::move(injection::InjectStructuralByEdgeReplacement(dataset.graph,
                                                             count, &rng))
          .value();
  detectors::Deg deg;
  ASSERT_TRUE(deg.Fit(injected.graph).ok());
  const double deg_auc =
      eval::Auc(deg.Score(injected.graph).score, injected.structural);
  EXPECT_LT(deg_auc, 0.65);

  detectors::VbmConfig config;
  config.hidden_dim = 32;
  config.epochs = 8;
  config.self_loop = true;  // Essential on avg-degree-2 graphs (Eq. 13).
  detectors::Vbm vbm(config);
  ASSERT_TRUE(vbm.Fit(injected.graph).ok());
  const double vbm_auc =
      eval::Auc(vbm.Score(injected.graph).score, injected.structural);
  EXPECT_GT(vbm_auc, deg_auc + 0.1);
  EXPECT_GT(vbm_auc, 0.7);
}

}  // namespace
}  // namespace vgod
