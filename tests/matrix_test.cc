// Benchmark-matrix tests (eval/matrix.h): spec parsing/validation, the
// golden determinism contract (byte-identical ToJson(false) at any thread
// count), schema shape of the timed artifact, per-cell failure isolation
// (a failing or timing-out cell is data, not a crash), and the Markdown
// rendering. Runs under the `threads` label so the TSan build exercises
// the case-sharing (once_flag + atomic countdown) machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/parallel.h"
#include "detectors/registry.h"
#include "eval/matrix.h"
#include "obs/json.h"

namespace vgod {
namespace {

using eval::CellResult;
using eval::CellSummary;
using eval::Leaderboard;
using eval::MatrixSpec;
using eval::RunMatrix;

/// A registry detector whose Fit always errors — the stand-in for a
/// diverging model when testing the isolation contract.
class AlwaysFailsDetector : public detectors::OutlierDetector {
 public:
  std::string name() const override { return "AlwaysFails"; }
  Status Fit(const AttributedGraph&) override {
    return Status::Internal("synthetic divergence (AlwaysFails)");
  }
  detectors::DetectorOutput Score(const AttributedGraph& graph) const override {
    detectors::DetectorOutput out;
    out.score.assign(graph.num_nodes(), 0.0);
    return out;
  }
};

void RegisterAlwaysFails() {
  static const bool once = [] {
    detectors::RegisterDetector(
        "AlwaysFails", [](const detectors::DetectorOptions&) {
          return Result<std::unique_ptr<detectors::OutlierDetector>>(
              std::make_unique<AlwaysFailsDetector>());
        });
    return true;
  }();
  (void)once;
}

MatrixSpec MiniSpec() {
  MatrixSpec spec;
  spec.detectors = {"Deg", "L2Norm"};
  spec.datasets = {"cora", "citeseer"};
  spec.regimes = {"contextual", "structural"};
  spec.seeds = {7, 8};
  spec.scale = 0.04;
  spec.epoch_scale = 0.05;
  spec.clique_size = 4;
  spec.candidate_set = 10;
  return spec;
}

TEST(MatrixSpecTest, FromJsonParsesEveryField) {
  const std::string text = R"({
    "detectors": ["VGOD"], "datasets": ["cora"],
    "regimes": ["joint-structural"], "seeds": [1, 2],
    "scale": 0.5, "epoch_scale": 0.25, "cell_timeout_seconds": 30,
    "injection": {"clique_size": 7, "num_cliques": 2,
                  "candidate_set": 9, "joint_degree": 3}})";
  Result<MatrixSpec> spec = MatrixSpec::FromJson(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().detectors, std::vector<std::string>{"VGOD"});
  EXPECT_EQ(spec.value().seeds, (std::vector<uint64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(spec.value().scale, 0.5);
  EXPECT_DOUBLE_EQ(spec.value().cell_timeout_seconds, 30.0);
  EXPECT_EQ(spec.value().clique_size, 7);
  EXPECT_EQ(spec.value().num_cliques, 2);
  EXPECT_EQ(spec.value().candidate_set, 9);
  EXPECT_EQ(spec.value().joint_degree, 3);
  EXPECT_EQ(spec.value().NumCells(), 2);
}

TEST(MatrixSpecTest, RoundTripsThroughToJson) {
  const MatrixSpec spec = MiniSpec();
  Result<MatrixSpec> reparsed = MatrixSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().ToJson(), spec.ToJson());
}

TEST(MatrixSpecTest, RejectsHostileSpecs) {
  // Malformed JSON, wrong root, typoed/unknown keys, unknown regimes,
  // empty axes, and out-of-range numerics all come back as Status.
  EXPECT_FALSE(MatrixSpec::FromJson("{not json").ok());
  EXPECT_FALSE(MatrixSpec::FromJson("[1,2]").ok());
  EXPECT_FALSE(MatrixSpec::FromJson(
                   R"({"detectors":["Deg"],"datasets":["cora"],
                       "regimes":["structural"],"seeds":[1],"typo":1})")
                   .ok());
  EXPECT_FALSE(MatrixSpec::FromJson(
                   R"({"detectors":["Deg"],"datasets":["cora"],
                       "regimes":["no-such-regime"],"seeds":[1]})")
                   .ok());
  EXPECT_FALSE(MatrixSpec::FromJson(
                   R"({"detectors":[],"datasets":["cora"],
                       "regimes":["structural"],"seeds":[1]})")
                   .ok());
  EXPECT_FALSE(MatrixSpec::FromJson(
                   R"({"detectors":["Deg"],"datasets":["cora"],
                       "regimes":["structural"],"seeds":[1],"scale":0})")
                   .ok());
  EXPECT_FALSE(MatrixSpec::FromJson(
                   R"({"detectors":["Deg"],"datasets":["cora"],
                       "regimes":["structural"],"seeds":[1],
                       "injection":{"clique_size":1}})")
                   .ok());
  MatrixSpec empty;
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(MatrixRunTest, GoldenLeaderboardIsByteIdenticalAcrossThreadCounts) {
  const MatrixSpec spec = MiniSpec();
  par::SetNumThreads(1);
  const Leaderboard serial = RunMatrix(spec);
  par::SetNumThreads(8);
  const Leaderboard threaded = RunMatrix(spec);
  par::SetNumThreads(1);
  EXPECT_EQ(serial.ToJson(/*include_timing=*/false),
            threaded.ToJson(/*include_timing=*/false));
  EXPECT_EQ(serial.ToMarkdown(), threaded.ToMarkdown());
}

TEST(MatrixRunTest, TimedArtifactMatchesSchema) {
  const MatrixSpec spec = MiniSpec();
  const Leaderboard board = RunMatrix(spec);
  Result<obs::JsonValue> doc = obs::ParseJson(board.ToJson(true));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue& root = doc.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("schema_version").number(), 1);
  EXPECT_TRUE(root.at("timing_included").boolean());
  ASSERT_TRUE(root.at("cells").is_array());
  EXPECT_EQ(static_cast<int64_t>(root.at("cells").array().size()),
            spec.NumCells());
  for (const obs::JsonValue& cell : root.at("cells").array()) {
    ASSERT_TRUE(cell.at("status").is_string());
    if (cell.at("status").string_value() == "ok") {
      const double auc = cell.at("auc").number();
      const double ap = cell.at("ap").number();
      EXPECT_GE(auc, 0.0);
      EXPECT_LE(auc, 1.0);
      EXPECT_GE(ap, 0.0);
      EXPECT_LE(ap, 1.0);
      EXPECT_GE(cell.at("wall_seconds").number(), 0.0);
      EXPECT_GE(cell.at("peak_tensor_bytes").number(), 0.0);
    } else {
      EXPECT_TRUE(cell.Has("error"));
    }
  }
  ASSERT_TRUE(root.at("summary").is_array());
  EXPECT_EQ(root.at("summary").array().size(),
            spec.detectors.size() * spec.datasets.size() *
                spec.regimes.size());
  ASSERT_TRUE(root.at("ranks").is_object());
  for (const std::string& regime : spec.regimes) {
    EXPECT_TRUE(root.at("ranks").Has(regime)) << regime;
  }
}

TEST(MatrixRunTest, FailingDetectorIsIsolatedToItsCells) {
  RegisterAlwaysFails();
  MatrixSpec spec = MiniSpec();
  spec.detectors = {"AlwaysFails", "Deg"};
  const Leaderboard board = RunMatrix(spec);
  int failed = 0, ok = 0;
  for (const CellResult& cell : board.cells) {
    if (cell.detector == "AlwaysFails") {
      EXPECT_EQ(cell.status, "failed");
      EXPECT_NE(cell.error.find("synthetic divergence"), std::string::npos);
      ++failed;
    } else {
      EXPECT_EQ(cell.status, "ok") << cell.error;
      ++ok;
    }
  }
  EXPECT_EQ(failed, 8);
  EXPECT_EQ(ok, 8);
  // The failed detector is unranked; the healthy one keeps rank 1.
  for (const CellSummary& summary : board.Summaries()) {
    if (summary.detector == "AlwaysFails") {
      EXPECT_EQ(summary.rank, 0);
      EXPECT_EQ(summary.seeds_ok, 0);
      EXPECT_EQ(summary.seeds_failed, 2);
    } else {
      EXPECT_EQ(summary.rank, 1);
    }
  }
}

TEST(MatrixRunTest, BrokenCaseFailsAllItsCellsButNotTheRun) {
  // "none" needs stored labels; cora has none, weibo does. The cora cells
  // must fail with the precondition message while weibo cells run.
  MatrixSpec spec;
  spec.detectors = {"Deg", "DegNorm"};
  spec.datasets = {"cora", "weibo"};
  spec.regimes = {"none"};
  spec.seeds = {7};
  spec.scale = 0.05;
  spec.epoch_scale = 0.05;
  const Leaderboard board = RunMatrix(spec);
  for (const CellResult& cell : board.cells) {
    if (cell.dataset == "cora") {
      EXPECT_EQ(cell.status, "failed");
      EXPECT_NE(cell.error.find("labels"), std::string::npos);
    } else {
      EXPECT_EQ(cell.status, "ok") << cell.error;
    }
  }
}

TEST(MatrixRunTest, UnknownDetectorNameFailsItsCellsOnly) {
  MatrixSpec spec = MiniSpec();
  spec.detectors = {"NoSuchDetector", "Deg"};
  const Leaderboard board = RunMatrix(spec);
  for (const CellResult& cell : board.cells) {
    EXPECT_EQ(cell.status,
              cell.detector == "NoSuchDetector" ? "failed" : "ok");
  }
}

TEST(MatrixRunTest, TimeoutRecordsTimeoutStatus) {
  MatrixSpec spec = MiniSpec();
  spec.detectors = {"Deg"};
  spec.cell_timeout_seconds = 1e-12;  // Everything is over budget.
  const Leaderboard board = RunMatrix(spec);
  for (const CellResult& cell : board.cells) {
    EXPECT_EQ(cell.status, "timeout");
    EXPECT_NE(cell.error.find("budget"), std::string::npos);
  }
}

TEST(MatrixRunTest, MarkdownRendersOneTablePerRegime) {
  const MatrixSpec spec = MiniSpec();
  const std::string markdown = RunMatrix(spec).ToMarkdown();
  for (const std::string& regime : spec.regimes) {
    EXPECT_NE(markdown.find("## Regime: " + regime), std::string::npos);
  }
  for (const std::string& detector : spec.detectors) {
    EXPECT_NE(markdown.find("| " + detector + " |"), std::string::npos);
  }
  for (const std::string& dataset : spec.datasets) {
    EXPECT_NE(markdown.find(dataset), std::string::npos);
  }
}

TEST(MatrixRunTest, ObserverSeesEveryCellExactlyOnce) {
  const MatrixSpec spec = MiniSpec();
  int64_t calls = 0, last_done = 0;
  RunMatrix(spec, [&](const CellResult&, int64_t done, int64_t total) {
    ++calls;
    EXPECT_EQ(total, spec.NumCells());
    EXPECT_EQ(done, calls);  // done is monotone under the observer lock.
    last_done = done;
  });
  EXPECT_EQ(calls, spec.NumCells());
  EXPECT_EQ(last_done, spec.NumCells());
}

}  // namespace
}  // namespace vgod
