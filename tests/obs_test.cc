#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"

namespace vgod::obs {
namespace {

// --- metrics ---

TEST(MetricsTest, CounterConcurrentAddsAreLossless) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kAddsPerThread);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.stable");
  Counter* b = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, MacroCachesOneCounterPerCallSite) {
  Counter* direct = MetricsRegistry::Global().GetCounter("test.macro_site");
  direct->Reset();
  for (int i = 0; i < 5; ++i) VGOD_COUNTER_ADD("test.macro_site", 2);
  EXPECT_EQ(direct->Value(), 10);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0: edges are inclusive ("le")
  hist.Observe(1.0001); // bucket 1
  hist.Observe(10.0);   // bucket 1
  hist.Observe(99.9);   // bucket 2
  hist.Observe(100.0);  // bucket 2
  hist.Observe(100.5);  // overflow
  const std::vector<int64_t> counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(hist.Count(), 7);
  EXPECT_NEAR(hist.Sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.5,
              1e-9);
}

TEST(MetricsTest, HistogramQuantileInterpolatesWithinBuckets) {
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(HistogramQuantile(empty, 0.5), 0.0);

  Histogram hist({1.0, 10.0, 100.0});
  // 10 observations in (1, 10]: every quantile lands in that bucket and
  // interpolates across it linearly.
  for (int i = 0; i < 10; ++i) hist.Observe(5.0);
  EXPECT_NEAR(HistogramQuantile(hist, 0.5), 1.0 + 0.5 * 9.0, 1e-9);
  EXPECT_NEAR(HistogramQuantile(hist, 1.0), 10.0, 1e-9);
  EXPECT_LE(HistogramQuantile(hist, 0.1), HistogramQuantile(hist, 0.9));

  // Overflow observations clamp to the last finite bound.
  Histogram overflow({1.0});
  overflow.Observe(50.0);
  EXPECT_EQ(HistogramQuantile(overflow, 0.99), 1.0);
}

TEST(MetricsTest, HistogramConcurrentObserveCountsEveryValue) {
  Histogram hist(DefaultLatencyBounds());
  constexpr int kThreads = 4;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t]() {
      for (int i = 0; i < kObsPerThread; ++i) {
        hist.Observe(1e-6 * (t + 1) * (i % 97 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), int64_t{kThreads} * kObsPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : hist.BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.Count());
}

TEST(MetricsTest, RegistryJsonRoundTrips) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json.counter")->Reset();
  registry.GetCounter("test.json.counter")->Add(42);
  registry.GetGauge("test.json.gauge")->Set(2.5);
  Histogram* hist = registry.GetHistogram("test.json.hist", {1.0, 2.0});
  hist->Reset();
  hist->Observe(0.5);
  hist->Observe(3.0);

  Result<JsonValue> parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("counters").at("test.json.counter").number(), 42.0);
  EXPECT_EQ(root.at("gauges").at("test.json.gauge").number(), 2.5);
  const JsonValue& hist_json = root.at("histograms").at("test.json.hist");
  ASSERT_TRUE(hist_json.is_object());
  EXPECT_EQ(hist_json.at("count").number(), 2.0);
  const JsonValue::Array& buckets = hist_json.at("buckets").array();
  ASSERT_EQ(buckets.size(), 3u);  // Two bounds + overflow.
  EXPECT_EQ(buckets[0].at("le").number(), 1.0);
  EXPECT_EQ(buckets[0].at("count").number(), 1.0);
  EXPECT_EQ(buckets[1].at("count").number(), 0.0);
  EXPECT_EQ(buckets[2].at("le").string_value(), "inf");
  EXPECT_EQ(buckets[2].at("count").number(), 1.0);
}

TEST(PrometheusTest, SanitizeMetricNameMapsToGrammar) {
  EXPECT_EQ(SanitizeMetricName("serve.requests.total"),
            "serve_requests_total");
  EXPECT_EQ(SanitizeMetricName("already_fine:name"), "already_fine:name");
  EXPECT_EQ(SanitizeMetricName("has spaces/and-dashes"),
            "has_spaces_and_dashes");
  EXPECT_EQ(SanitizeMetricName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(PrometheusTest, EscapeLabelValueEscapesSpecials) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("quo\"te"), "quo\\\"te");
  EXPECT_EQ(EscapeLabelValue("new\nline"), "new\\nline");
}

// Pulls every exposition line that starts with `prefix` (sanitized name).
std::vector<std::string> LinesWithPrefix(const std::string& text,
                                         const std::string& prefix) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind(prefix, 0) == 0) out.push_back(line);
  }
  return out;
}

TEST(PrometheusTest, CounterAndGaugeExposition) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom.counter")->Reset();
  registry.GetCounter("test.prom.counter")->Add(7);
  registry.GetGauge("test.prom.gauge")->Set(1.5);

  const std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("# HELP test_prom_counter vgod metric test.prom.counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("\ntest_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("\ntest_prom_gauge 1.5\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* hist = registry.GetHistogram("test.prom.hist", {0.1, 1.0, 10.0});
  hist->Reset();
  hist->Observe(0.05);
  hist->Observe(0.5);
  hist->Observe(5.0);
  hist->Observe(50.0);  // Overflow.

  const std::string text = registry.ToPrometheus();
  const std::vector<std::string> buckets =
      LinesWithPrefix(text, "test_prom_hist_bucket");
  ASSERT_EQ(buckets.size(), 4u);  // Three bounds + +Inf.
  // Cumulative counts, monotonically non-decreasing, +Inf last.
  double prev = -1.0;
  for (const std::string& line : buckets) {
    const double count = std::stod(line.substr(line.rfind(' ')));
    EXPECT_GE(count, prev);
    prev = count;
  }
  EXPECT_NE(buckets.back().find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(prev, 4.0);

  const std::vector<std::string> count_lines =
      LinesWithPrefix(text, "test_prom_hist_count");
  ASSERT_EQ(count_lines.size(), 1u);
  // The +Inf bucket and _count must agree — scrapers cross-check them.
  EXPECT_EQ(std::stod(count_lines[0].substr(count_lines[0].rfind(' '))),
            4.0);
  const std::vector<std::string> sum_lines =
      LinesWithPrefix(text, "test_prom_hist_sum");
  ASSERT_EQ(sum_lines.size(), 1u);
  EXPECT_NEAR(std::stod(sum_lines[0].substr(sum_lines[0].rfind(' '))),
              0.05 + 0.5 + 5.0 + 50.0, 1e-9);
}

TEST(PrometheusTest, EveryMetricHasHelpAndTypeLines) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom.help_check")->Increment();
  const std::string text = registry.ToPrometheus();
  std::istringstream stream(text);
  std::string line;
  std::string last_type_for;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      if (line.rfind("# TYPE ", 0) == 0) {
        last_type_for = line.substr(7, line.find(' ', 7) - 7);
      }
      continue;
    }
    // A sample line: its metric name must extend the last # TYPE name
    // (exactly, or with the _bucket/_sum/_count histogram suffixes).
    const size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    EXPECT_EQ(name.rfind(last_type_for, 0), 0u) << line;
  }
}

// --- json ---

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue::Object obj;
  obj["name"] = JsonValue(std::string("va\"lue\nwith \\ escapes"));
  obj["pi"] = JsonValue(3.14159265358979);
  obj["neg"] = JsonValue(int64_t{-7});
  obj["flag"] = JsonValue(true);
  obj["nothing"] = JsonValue();
  JsonValue::Array arr;
  arr.push_back(JsonValue(1.0));
  arr.push_back(JsonValue(std::string("two")));
  obj["list"] = JsonValue(std::move(arr));
  const JsonValue original{JsonValue(std::move(obj))};

  Result<JsonValue> reparsed = ParseJson(original.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().Dump(), original.Dump());
  EXPECT_EQ(reparsed.value().at("name").string_value(),
            "va\"lue\nwith \\ escapes");
  EXPECT_NEAR(reparsed.value().at("pi").number(), 3.14159265358979, 1e-15);
  EXPECT_TRUE(reparsed.value().at("flag").boolean());
  EXPECT_TRUE(reparsed.value().at("nothing").is_null());
  EXPECT_EQ(reparsed.value().at("list").array().size(), 2u);
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseJson("{\"unterminated\": ").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("nope").ok());
}

TEST(JsonTest, NonFiniteNumbersSerializeAsZero) {
  std::string out;
  AppendJsonNumber(&out, std::nan(""));
  EXPECT_EQ(out, "0");
}

// --- trace ---

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TraceEnabled();
    ClearTrace();
    SetTraceEnabled(true);
  }
  void TearDown() override {
    ClearTrace();
    SetTraceEnabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(TraceTest, NestedSpansRecordInnerFirstAndNestWithinOuter) {
  {
    VGOD_TRACE_SPAN("outer");
    VGOD_TRACE_SPAN("inner");
  }
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes (and records) before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  SetTraceEnabled(false);
  {
    VGOD_TRACE_SPAN("invisible");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, TraceJsonIsChromeTraceEventFormat) {
  RecordCompleteEvent("phase/a", 10, 5);
  RecordCompleteEvent("phase/b", 20, 1);
  Result<JsonValue> parsed = ParseJson(TraceToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.Has("traceEvents"));
  const JsonValue::Array& events = root.at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").string_value(), "phase/a");
  EXPECT_EQ(events[0].at("ph").string_value(), "X");
  EXPECT_EQ(events[0].at("ts").number(), 10.0);
  EXPECT_EQ(events[0].at("dur").number(), 5.0);
  EXPECT_TRUE(events[0].Has("pid"));
  EXPECT_TRUE(events[0].Has("tid"));
}

TEST_F(TraceTest, FlowEventsCarryPhaseAndId) {
  RecordFlowEvent("serve/request", 42, /*finish=*/false);
  RecordFlowEvent("serve/request", 42, /*finish=*/true);
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 's');
  EXPECT_EQ(events[1].ph, 'f');
  EXPECT_EQ(events[0].flow_id, 42u);
  EXPECT_EQ(events[1].flow_id, 42u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);

  Result<JsonValue> parsed = ParseJson(TraceToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue::Array& json = parsed.value().at("traceEvents").array();
  ASSERT_EQ(json.size(), 2u);
  EXPECT_EQ(json[0].at("ph").string_value(), "s");
  EXPECT_EQ(json[0].at("id").number(), 42.0);
  EXPECT_FALSE(json[0].Has("dur"));  // Flow events are instantaneous.
  EXPECT_EQ(json[1].at("ph").string_value(), "f");
  // Finishes bind to the enclosing slice so the arrow lands on the span
  // that consumed the request.
  EXPECT_EQ(json[1].at("bp").string_value(), "e");
}

TEST_F(TraceTest, FlowEventsAreNoOpsWhenDisabled) {
  SetTraceEnabled(false);
  RecordFlowEvent("serve/request", 7, false);
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, WriteTraceProducesReadableFile) {
  RecordCompleteEvent("io/span", 0, 3);
  const std::string path = ::testing::TempDir() + "/vgod_trace_test.json";
  ASSERT_TRUE(WriteTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> parsed = ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().at("traceEvents").array().size(), 1u);
  std::remove(path.c_str());
}

// --- memory ---

TEST(MemoryTest, PeakTracksHighWaterMark) {
  ResetPeakTensorBytes();
  const int64_t base_live = LiveTensorBytes();
  OnTensorAlloc(1000);
  OnTensorAlloc(500);
  OnTensorFree(1000);
  OnTensorAlloc(100);
  EXPECT_EQ(LiveTensorBytes(), base_live + 600);
  EXPECT_EQ(PeakTensorBytes(), base_live + 1500);
  ResetPeakTensorBytes();
  EXPECT_EQ(PeakTensorBytes(), base_live + 600);
  OnTensorFree(500);
  OnTensorFree(100);
  EXPECT_EQ(LiveTensorBytes(), base_live);
}

// --- monitor ---

EpochRecord MakeRecord(int epoch) {
  EpochRecord record;
  record.detector = "TestDetector";
  record.epoch = epoch;
  record.planned_epochs = 3;
  record.loss = 0.5 / epoch;
  record.grad_norm = 1.25;
  record.seconds = 0.01;
  record.peak_tensor_bytes = 4096;
  return record;
}

TEST(MonitorTest, EpochRecordJsonRoundTrips) {
  Result<JsonValue> parsed = ParseJson(EpochRecordToJson(MakeRecord(2)));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.at("detector").string_value(), "TestDetector");
  EXPECT_EQ(root.at("epoch").number(), 2.0);
  EXPECT_EQ(root.at("planned_epochs").number(), 3.0);
  EXPECT_EQ(root.at("loss").number(), 0.25);
  EXPECT_EQ(root.at("grad_norm").number(), 1.25);
  EXPECT_EQ(root.at("peak_tensor_bytes").number(), 4096.0);
}

TEST(MonitorTest, JsonlStreamsOneParsableObjectPerEpoch) {
  const std::string path = ::testing::TempDir() + "/vgod_monitor_test.jsonl";
  {
    Result<std::unique_ptr<TrainingMonitor>> monitor =
        TrainingMonitor::WithJsonl(path);
    ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
    for (int epoch = 1; epoch <= 3; ++epoch) {
      monitor.value()->Record(MakeRecord(epoch));
    }
    EXPECT_EQ(monitor.value()->Records().size(), 3u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    Result<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << "line " << lines << ": " << line;
    EXPECT_EQ(parsed.value().at("epoch").number(), lines);
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(MonitorTest, WithJsonlRejectsUnwritablePath) {
  EXPECT_FALSE(TrainingMonitor::WithJsonl("/nonexistent-dir/x.jsonl").ok());
}

TEST(MonitorTest, TrainingRunFeedsSinkMonitorAndProbe) {
  TrainingMonitor monitor;
  std::vector<std::pair<int, size_t>> probed;
  monitor.SetScoreProbe([&probed](const std::string& detector, int epoch,
                                  const std::vector<double>& scores) {
    EXPECT_EQ(detector, "Probe");
    probed.emplace_back(epoch, scores.size());
  });
  std::vector<EpochRecord> sink = {MakeRecord(99)};  // Stale; must clear.
  {
    TrainingRun run("Probe", 2, &monitor, &sink);
    EXPECT_TRUE(run.wants_scores());
    for (int epoch = 1; epoch <= 2; ++epoch) {
      const EpochRecord record = run.EndEpoch(epoch, 0.5, 0.1);
      EXPECT_EQ(record.detector, "Probe");
      EXPECT_EQ(record.epoch, epoch);
      EXPECT_GE(record.seconds, 0.0);
      run.ProbeScores(epoch, {1.0, 2.0, 3.0});
    }
    EXPECT_GT(run.TotalSeconds(), 0.0);
  }
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0].epoch, 1);
  EXPECT_EQ(sink[1].epoch, 2);
  EXPECT_EQ(monitor.Records().size(), 2u);
  ASSERT_EQ(probed.size(), 2u);
  EXPECT_EQ(probed[0], (std::pair<int, size_t>{1, 3u}));
}

TEST(MonitorTest, TrainingRunEmitsFitAndEpochSpans) {
  const bool was_enabled = TraceEnabled();
  ClearTrace();
  SetTraceEnabled(true);
  {
    TrainingRun run("SpanCheck", 1, nullptr, nullptr);
    run.EndEpoch(1, 0.0, 0.0);
  }
  std::vector<std::string> names;
  for (const TraceEvent& event : SnapshotTraceEvents()) {
    names.push_back(event.name);
  }
  ClearTrace();
  SetTraceEnabled(was_enabled);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "SpanCheck/epoch");
  EXPECT_EQ(names[1], "SpanCheck/fit");
}

}  // namespace
}  // namespace vgod::obs
