#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace vgod::obs {
namespace {

// --- metrics ---

TEST(MetricsTest, CounterConcurrentAddsAreLossless) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kAddsPerThread);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.stable");
  Counter* b = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, MacroCachesOneCounterPerCallSite) {
  Counter* direct = MetricsRegistry::Global().GetCounter("test.macro_site");
  direct->Reset();
  for (int i = 0; i < 5; ++i) VGOD_COUNTER_ADD("test.macro_site", 2);
  EXPECT_EQ(direct->Value(), 10);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0: edges are inclusive ("le")
  hist.Observe(1.0001); // bucket 1
  hist.Observe(10.0);   // bucket 1
  hist.Observe(99.9);   // bucket 2
  hist.Observe(100.0);  // bucket 2
  hist.Observe(100.5);  // overflow
  const std::vector<int64_t> counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(hist.Count(), 7);
  EXPECT_NEAR(hist.Sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.5,
              1e-9);
}

TEST(MetricsTest, HistogramQuantileInterpolatesWithinBuckets) {
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(HistogramQuantile(empty, 0.5), 0.0);

  Histogram hist({1.0, 10.0, 100.0});
  // 10 observations in (1, 10]: every quantile lands in that bucket and
  // interpolates across it linearly.
  for (int i = 0; i < 10; ++i) hist.Observe(5.0);
  EXPECT_NEAR(HistogramQuantile(hist, 0.5), 1.0 + 0.5 * 9.0, 1e-9);
  EXPECT_NEAR(HistogramQuantile(hist, 1.0), 10.0, 1e-9);
  EXPECT_LE(HistogramQuantile(hist, 0.1), HistogramQuantile(hist, 0.9));

  // Overflow observations clamp to the last finite bound.
  Histogram overflow({1.0});
  overflow.Observe(50.0);
  EXPECT_EQ(HistogramQuantile(overflow, 0.99), 1.0);
}

TEST(MetricsTest, HistogramConcurrentObserveCountsEveryValue) {
  Histogram hist(DefaultLatencyBounds());
  constexpr int kThreads = 4;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t]() {
      for (int i = 0; i < kObsPerThread; ++i) {
        hist.Observe(1e-6 * (t + 1) * (i % 97 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), int64_t{kThreads} * kObsPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : hist.BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.Count());
}

TEST(MetricsTest, HistogramQuantileEdgeCases) {
  // No bounds at all: every quantile collapses to 0.
  Histogram unbounded({});
  EXPECT_EQ(HistogramQuantile(unbounded, 0.5), 0.0);
  unbounded.Observe(3.0);  // lands in the only (overflow) bucket
  EXPECT_EQ(HistogramQuantile(unbounded, 0.0), 0.0);
  EXPECT_EQ(HistogramQuantile(unbounded, 0.5), 0.0);
  EXPECT_EQ(HistogramQuantile(unbounded, 1.0), 0.0);

  // Empty histogram with bounds: still 0, not the first bound.
  Histogram empty({1.0, 2.0, 4.0});
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(HistogramQuantile(empty, q), 0.0) << "q=" << q;
  }

  // Single finite bucket: quantiles interpolate across [0, bound].
  Histogram single({8.0});
  for (int i = 0; i < 4; ++i) single.Observe(1.0);
  EXPECT_NEAR(HistogramQuantile(single, 0.5), 4.0, 1e-9);
  EXPECT_NEAR(HistogramQuantile(single, 1.0), 8.0, 1e-9);

  // All mass in the +Inf overflow bucket: clamps to the last finite
  // bound instead of inventing an infinite latency.
  Histogram overflow({1.0, 2.0});
  for (int i = 0; i < 10; ++i) overflow.Observe(100.0);
  EXPECT_EQ(HistogramQuantile(overflow, 0.01), 2.0);
  EXPECT_EQ(HistogramQuantile(overflow, 0.99), 2.0);

  // Out-of-range q is clamped, not UB.
  EXPECT_EQ(HistogramQuantile(overflow, -0.5), 2.0);
  EXPECT_EQ(HistogramQuantile(overflow, 1.5), 2.0);
}

TEST(MetricsTest, RegistryConcurrentWritersAndScrapers) {
  // Hammer the registry from many writer threads (mixing pre-existing and
  // freshly created names) while two scrapers render ToJson/ToPrometheus.
  // Correctness here is "no lost counts, no torn registry"; under TSan
  // (ctest -L threads) it is also a data-race gate for the pull-model
  // gauge publication that the scrape path performs.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.mt.shared")->Reset();
  constexpr int kThreads = 6;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t]() {
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter("test.mt.shared")->Increment();
        registry.GetGauge("test.mt.gauge." + std::to_string(t))
            ->Set(static_cast<double>(i));
        registry
            .GetHistogram("test.mt.hist." + std::to_string(t % 3),
                          DefaultLatencyBounds())
            ->Observe(1e-5 * (i % 13 + 1));
      }
    });
  }
  std::string json;
  std::string prom;
  std::thread json_scraper([&registry, &json]() {
    for (int i = 0; i < 20; ++i) json = registry.ToJson();
  });
  std::thread prom_scraper([&registry, &prom]() {
    for (int i = 0; i < 20; ++i) prom = registry.ToPrometheus();
  });
  for (std::thread& t : threads) t.join();
  json_scraper.join();
  prom_scraper.join();
  EXPECT_EQ(registry.GetCounter("test.mt.shared")->Value(),
            int64_t{kThreads} * kIters);
  // Scrapes taken mid-write must still be parseable JSON.
  json = registry.ToJson();
  EXPECT_TRUE(ParseJson(json).ok());
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
}

TEST(MetricsTest, RegistryJsonRoundTrips) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json.counter")->Reset();
  registry.GetCounter("test.json.counter")->Add(42);
  registry.GetGauge("test.json.gauge")->Set(2.5);
  Histogram* hist = registry.GetHistogram("test.json.hist", {1.0, 2.0});
  hist->Reset();
  hist->Observe(0.5);
  hist->Observe(3.0);

  Result<JsonValue> parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("counters").at("test.json.counter").number(), 42.0);
  EXPECT_EQ(root.at("gauges").at("test.json.gauge").number(), 2.5);
  const JsonValue& hist_json = root.at("histograms").at("test.json.hist");
  ASSERT_TRUE(hist_json.is_object());
  EXPECT_EQ(hist_json.at("count").number(), 2.0);
  const JsonValue::Array& buckets = hist_json.at("buckets").array();
  ASSERT_EQ(buckets.size(), 3u);  // Two bounds + overflow.
  EXPECT_EQ(buckets[0].at("le").number(), 1.0);
  EXPECT_EQ(buckets[0].at("count").number(), 1.0);
  EXPECT_EQ(buckets[1].at("count").number(), 0.0);
  EXPECT_EQ(buckets[2].at("le").string_value(), "inf");
  EXPECT_EQ(buckets[2].at("count").number(), 1.0);
}

TEST(PrometheusTest, SanitizeMetricNameMapsToGrammar) {
  EXPECT_EQ(SanitizeMetricName("serve.requests.total"),
            "serve_requests_total");
  EXPECT_EQ(SanitizeMetricName("already_fine:name"), "already_fine:name");
  EXPECT_EQ(SanitizeMetricName("has spaces/and-dashes"),
            "has_spaces_and_dashes");
  EXPECT_EQ(SanitizeMetricName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(PrometheusTest, EscapeLabelValueEscapesSpecials) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("quo\"te"), "quo\\\"te");
  EXPECT_EQ(EscapeLabelValue("new\nline"), "new\\nline");
}

// Pulls every exposition line that starts with `prefix` (sanitized name).
std::vector<std::string> LinesWithPrefix(const std::string& text,
                                         const std::string& prefix) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind(prefix, 0) == 0) out.push_back(line);
  }
  return out;
}

TEST(PrometheusTest, CounterAndGaugeExposition) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom.counter")->Reset();
  registry.GetCounter("test.prom.counter")->Add(7);
  registry.GetGauge("test.prom.gauge")->Set(1.5);

  const std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("# HELP test_prom_counter vgod metric test.prom.counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("\ntest_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("\ntest_prom_gauge 1.5\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* hist = registry.GetHistogram("test.prom.hist", {0.1, 1.0, 10.0});
  hist->Reset();
  hist->Observe(0.05);
  hist->Observe(0.5);
  hist->Observe(5.0);
  hist->Observe(50.0);  // Overflow.

  const std::string text = registry.ToPrometheus();
  const std::vector<std::string> buckets =
      LinesWithPrefix(text, "test_prom_hist_bucket");
  ASSERT_EQ(buckets.size(), 4u);  // Three bounds + +Inf.
  // Cumulative counts, monotonically non-decreasing, +Inf last.
  double prev = -1.0;
  for (const std::string& line : buckets) {
    const double count = std::stod(line.substr(line.rfind(' ')));
    EXPECT_GE(count, prev);
    prev = count;
  }
  EXPECT_NE(buckets.back().find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(prev, 4.0);

  const std::vector<std::string> count_lines =
      LinesWithPrefix(text, "test_prom_hist_count");
  ASSERT_EQ(count_lines.size(), 1u);
  // The +Inf bucket and _count must agree — scrapers cross-check them.
  EXPECT_EQ(std::stod(count_lines[0].substr(count_lines[0].rfind(' '))),
            4.0);
  const std::vector<std::string> sum_lines =
      LinesWithPrefix(text, "test_prom_hist_sum");
  ASSERT_EQ(sum_lines.size(), 1u);
  EXPECT_NEAR(std::stod(sum_lines[0].substr(sum_lines[0].rfind(' '))),
              0.05 + 0.5 + 5.0 + 50.0, 1e-9);
}

TEST(PrometheusTest, EveryMetricHasHelpAndTypeLines) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom.help_check")->Increment();
  const std::string text = registry.ToPrometheus();
  std::istringstream stream(text);
  std::string line;
  std::string last_type_for;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      if (line.rfind("# TYPE ", 0) == 0) {
        last_type_for = line.substr(7, line.find(' ', 7) - 7);
      }
      continue;
    }
    // A sample line: its metric name must extend the last # TYPE name
    // (exactly, or with the _bucket/_sum/_count histogram suffixes).
    const size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    EXPECT_EQ(name.rfind(last_type_for, 0), 0u) << line;
  }
}

// --- json ---

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue::Object obj;
  obj["name"] = JsonValue(std::string("va\"lue\nwith \\ escapes"));
  obj["pi"] = JsonValue(3.14159265358979);
  obj["neg"] = JsonValue(int64_t{-7});
  obj["flag"] = JsonValue(true);
  obj["nothing"] = JsonValue();
  JsonValue::Array arr;
  arr.push_back(JsonValue(1.0));
  arr.push_back(JsonValue(std::string("two")));
  obj["list"] = JsonValue(std::move(arr));
  const JsonValue original{JsonValue(std::move(obj))};

  Result<JsonValue> reparsed = ParseJson(original.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().Dump(), original.Dump());
  EXPECT_EQ(reparsed.value().at("name").string_value(),
            "va\"lue\nwith \\ escapes");
  EXPECT_NEAR(reparsed.value().at("pi").number(), 3.14159265358979, 1e-15);
  EXPECT_TRUE(reparsed.value().at("flag").boolean());
  EXPECT_TRUE(reparsed.value().at("nothing").is_null());
  EXPECT_EQ(reparsed.value().at("list").array().size(), 2u);
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseJson("{\"unterminated\": ").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("nope").ok());
}

TEST(JsonTest, NonFiniteNumbersSerializeAsZero) {
  std::string out;
  AppendJsonNumber(&out, std::nan(""));
  EXPECT_EQ(out, "0");
}

// --- trace ---

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TraceEnabled();
    ClearTrace();
    SetTraceEnabled(true);
  }
  void TearDown() override {
    ClearTrace();
    SetTraceEnabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(TraceTest, NestedSpansRecordInnerFirstAndNestWithinOuter) {
  {
    VGOD_TRACE_SPAN("outer");
    VGOD_TRACE_SPAN("inner");
  }
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes (and records) before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  SetTraceEnabled(false);
  {
    VGOD_TRACE_SPAN("invisible");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, TraceJsonIsChromeTraceEventFormat) {
  RecordCompleteEvent("phase/a", 10, 5);
  RecordCompleteEvent("phase/b", 20, 1);
  Result<JsonValue> parsed = ParseJson(TraceToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.Has("traceEvents"));
  const JsonValue::Array& events = root.at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").string_value(), "phase/a");
  EXPECT_EQ(events[0].at("ph").string_value(), "X");
  EXPECT_EQ(events[0].at("ts").number(), 10.0);
  EXPECT_EQ(events[0].at("dur").number(), 5.0);
  EXPECT_TRUE(events[0].Has("pid"));
  EXPECT_TRUE(events[0].Has("tid"));
}

TEST_F(TraceTest, FlowEventsCarryPhaseAndId) {
  RecordFlowEvent("serve/request", 42, /*finish=*/false);
  RecordFlowEvent("serve/request", 42, /*finish=*/true);
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 's');
  EXPECT_EQ(events[1].ph, 'f');
  EXPECT_EQ(events[0].flow_id, 42u);
  EXPECT_EQ(events[1].flow_id, 42u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);

  Result<JsonValue> parsed = ParseJson(TraceToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue::Array& json = parsed.value().at("traceEvents").array();
  ASSERT_EQ(json.size(), 2u);
  EXPECT_EQ(json[0].at("ph").string_value(), "s");
  EXPECT_EQ(json[0].at("id").number(), 42.0);
  EXPECT_FALSE(json[0].Has("dur"));  // Flow events are instantaneous.
  EXPECT_EQ(json[1].at("ph").string_value(), "f");
  // Finishes bind to the enclosing slice so the arrow lands on the span
  // that consumed the request.
  EXPECT_EQ(json[1].at("bp").string_value(), "e");
}

TEST_F(TraceTest, FlowEventsAreNoOpsWhenDisabled) {
  SetTraceEnabled(false);
  RecordFlowEvent("serve/request", 7, false);
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, WriteTraceProducesReadableFile) {
  RecordCompleteEvent("io/span", 0, 3);
  const std::string path = ::testing::TempDir() + "/vgod_trace_test.json";
  ASSERT_TRUE(WriteTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> parsed = ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().at("traceEvents").array().size(), 1u);
  std::remove(path.c_str());
}

// --- memory ---

TEST(MemoryTest, PeakTracksHighWaterMark) {
  ResetPeakTensorBytes();
  const int64_t base_live = LiveTensorBytes();
  OnTensorAlloc(1000);
  OnTensorAlloc(500);
  OnTensorFree(1000);
  OnTensorAlloc(100);
  EXPECT_EQ(LiveTensorBytes(), base_live + 600);
  EXPECT_EQ(PeakTensorBytes(), base_live + 1500);
  ResetPeakTensorBytes();
  EXPECT_EQ(PeakTensorBytes(), base_live + 600);
  OnTensorFree(500);
  OnTensorFree(100);
  EXPECT_EQ(LiveTensorBytes(), base_live);
}

// --- monitor ---

EpochRecord MakeRecord(int epoch) {
  EpochRecord record;
  record.detector = "TestDetector";
  record.epoch = epoch;
  record.planned_epochs = 3;
  record.loss = 0.5 / epoch;
  record.grad_norm = 1.25;
  record.seconds = 0.01;
  record.peak_tensor_bytes = 4096;
  return record;
}

TEST(MonitorTest, EpochRecordJsonRoundTrips) {
  Result<JsonValue> parsed = ParseJson(EpochRecordToJson(MakeRecord(2)));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.at("detector").string_value(), "TestDetector");
  EXPECT_EQ(root.at("epoch").number(), 2.0);
  EXPECT_EQ(root.at("planned_epochs").number(), 3.0);
  EXPECT_EQ(root.at("loss").number(), 0.25);
  EXPECT_EQ(root.at("grad_norm").number(), 1.25);
  EXPECT_EQ(root.at("peak_tensor_bytes").number(), 4096.0);
}

TEST(MonitorTest, JsonlStreamsOneParsableObjectPerEpoch) {
  const std::string path = ::testing::TempDir() + "/vgod_monitor_test.jsonl";
  {
    Result<std::unique_ptr<TrainingMonitor>> monitor =
        TrainingMonitor::WithJsonl(path);
    ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
    for (int epoch = 1; epoch <= 3; ++epoch) {
      monitor.value()->Record(MakeRecord(epoch));
    }
    EXPECT_EQ(monitor.value()->Records().size(), 3u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    Result<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << "line " << lines << ": " << line;
    EXPECT_EQ(parsed.value().at("epoch").number(), lines);
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(MonitorTest, WithJsonlRejectsUnwritablePath) {
  EXPECT_FALSE(TrainingMonitor::WithJsonl("/nonexistent-dir/x.jsonl").ok());
}

TEST(MonitorTest, TrainingRunFeedsSinkMonitorAndProbe) {
  TrainingMonitor monitor;
  std::vector<std::pair<int, size_t>> probed;
  monitor.SetScoreProbe([&probed](const std::string& detector, int epoch,
                                  const std::vector<double>& scores) {
    EXPECT_EQ(detector, "Probe");
    probed.emplace_back(epoch, scores.size());
  });
  std::vector<EpochRecord> sink = {MakeRecord(99)};  // Stale; must clear.
  {
    TrainingRun run("Probe", 2, &monitor, &sink);
    EXPECT_TRUE(run.wants_scores());
    for (int epoch = 1; epoch <= 2; ++epoch) {
      const EpochRecord record = run.EndEpoch(epoch, 0.5, 0.1);
      EXPECT_EQ(record.detector, "Probe");
      EXPECT_EQ(record.epoch, epoch);
      EXPECT_GE(record.seconds, 0.0);
      run.ProbeScores(epoch, {1.0, 2.0, 3.0});
    }
    EXPECT_GT(run.TotalSeconds(), 0.0);
  }
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0].epoch, 1);
  EXPECT_EQ(sink[1].epoch, 2);
  EXPECT_EQ(monitor.Records().size(), 2u);
  ASSERT_EQ(probed.size(), 2u);
  EXPECT_EQ(probed[0], (std::pair<int, size_t>{1, 3u}));
}

TEST(MonitorTest, TrainingRunEmitsFitAndEpochSpans) {
  const bool was_enabled = TraceEnabled();
  ClearTrace();
  SetTraceEnabled(true);
  {
    TrainingRun run("SpanCheck", 1, nullptr, nullptr);
    run.EndEpoch(1, 0.0, 0.0);
  }
  std::vector<std::string> names;
  for (const TraceEvent& event : SnapshotTraceEvents()) {
    names.push_back(event.name);
  }
  ClearTrace();
  SetTraceEnabled(was_enabled);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "SpanCheck/epoch");
  EXPECT_EQ(names[1], "SpanCheck/fit");
}

// --- profiler ---

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetProfileEnabled(true);
    ClearProfile();
  }
  void TearDown() override {
    SetProfileEnabled(false);
    ClearProfile();
  }

  static const ProfileNode* Child(const ProfileNode& node,
                                  const std::string& name) {
    for (const ProfileNode& child : node.children) {
      if (child.name == name) return &child;
    }
    return nullptr;
  }
};

TEST_F(ProfileTest, DisabledScopesRecordNothing) {
  SetProfileEnabled(false);
  ClearProfile();
  {
    VGOD_PROFILE_SCOPE("test/ignored");
    ProfileAddBytes(1 << 20);
  }
  const ProfileNode root = SnapshotProfile();
  EXPECT_EQ(Child(root, "test/ignored"), nullptr);
}

TEST_F(ProfileTest, NestedScopesBuildTreeWithInvariant) {
  {
    VGOD_PROFILE_SCOPE("test/outer");
    for (int i = 0; i < 3; ++i) {
      VGOD_PROFILE_SCOPE("test/inner");
      ProfileAddBytes(100);
    }
  }
  const ProfileNode root = SnapshotProfile();
  const ProfileNode* outer = Child(root, "test/outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 1);
  const ProfileNode* inner = Child(*outer, "test/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 3);
  EXPECT_EQ(inner->bytes, 300);
  // Tree invariant: children's inclusive time fits inside the parent's,
  // and exclusive is the exact remainder.
  EXPECT_LE(inner->inclusive_ns, outer->inclusive_ns);
  EXPECT_EQ(outer->exclusive_ns, outer->inclusive_ns - inner->inclusive_ns);
  EXPECT_GE(inner->inclusive_ns, 0);
}

TEST_F(ProfileTest, SiblingScopesStayDistinctAndNameSorted) {
  {
    VGOD_PROFILE_SCOPE("test/parent");
    { VGOD_PROFILE_SCOPE("test/b"); }
    { VGOD_PROFILE_SCOPE("test/a"); }
    { VGOD_PROFILE_SCOPE("test/b"); }
  }
  const ProfileNode root = SnapshotProfile();
  const ProfileNode* parent = Child(root, "test/parent");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 2u);
  EXPECT_EQ(parent->children[0].name, "test/a");  // sorted, not visit order
  EXPECT_EQ(parent->children[1].name, "test/b");
  EXPECT_EQ(parent->children[0].calls, 1);
  EXPECT_EQ(parent->children[1].calls, 2);
}

TEST_F(ProfileTest, ClearProfileZeroesButKeepsShape) {
  { VGOD_PROFILE_SCOPE("test/cleared"); }
  ClearProfile();
  const ProfileNode root = SnapshotProfile();
  const ProfileNode* node = Child(root, "test/cleared");
  ASSERT_NE(node, nullptr);  // structure survives for live scope pointers
  EXPECT_EQ(node->calls, 0);
  EXPECT_EQ(node->inclusive_ns, 0);
}

TEST_F(ProfileTest, FoldedExportEmitsStackLines) {
  {
    VGOD_PROFILE_SCOPE("test/root_scope");
    VGOD_PROFILE_SCOPE("test/leaf");
  }
  const std::string folded = ProfileToFolded();
  EXPECT_NE(folded.find("test/root_scope;test/leaf "), std::string::npos)
      << folded;
  // Every line is "frame(;frame)* <digits>".
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string count = line.substr(space + 1);
    EXPECT_FALSE(count.empty());
    EXPECT_EQ(count.find_first_not_of("0123456789"), std::string::npos)
        << line;
  }
}

TEST_F(ProfileTest, JsonExportParsesAndNestsChildren) {
  {
    VGOD_PROFILE_SCOPE("test/json_outer");
    VGOD_PROFILE_SCOPE("test/json_inner");
  }
  Result<JsonValue> parsed = ParseJson(ProfileToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.at("children").is_array());
  bool found = false;
  for (const JsonValue& child : root.at("children").array()) {
    if (child.at("name").string_value() != "test/json_outer") continue;
    found = true;
    EXPECT_EQ(child.at("calls").number(), 1.0);
    ASSERT_EQ(child.at("children").array().size(), 1u);
    EXPECT_EQ(child.at("children").array()[0].at("name").string_value(),
              "test/json_inner");
  }
  EXPECT_TRUE(found);
}

TEST_F(ProfileTest, WriteProfilePicksFormatFromExtension) {
  { VGOD_PROFILE_SCOPE("test/written"); }
  const std::string json_path = "obs_profile_test.json";
  const std::string folded_path = "obs_profile_test.folded";
  ASSERT_TRUE(WriteProfile(json_path).ok());
  ASSERT_TRUE(WriteProfile(folded_path).ok());
  std::ifstream json_file(json_path);
  std::stringstream json_text;
  json_text << json_file.rdbuf();
  EXPECT_TRUE(ParseJson(json_text.str()).ok());
  std::ifstream folded_file(folded_path);
  std::stringstream folded_text;
  folded_text << folded_file.rdbuf();
  // ClearProfile keeps zeroed nodes from earlier tests, so the file can
  // hold other (count 0) stacks; ours must be among them.
  EXPECT_NE(folded_text.str().find("test/written "), std::string::npos)
      << folded_text.str();
  std::remove(json_path.c_str());
  std::remove(folded_path.c_str());
}

TEST_F(ProfileTest, MemoryPhaseAttributesPeakAndRestoresOuter) {
  const int64_t baseline = LiveTensorBytes();
  ResetPeakTensorBytes();
  OnTensorAlloc(1000);
  OnTensorFree(1000);  // outer peak: baseline + 1000
  {
    VGOD_PROFILE_MEMORY_PHASE("test/phase");
    OnTensorAlloc(400);
    OnTensorFree(400);
  }
  const ProfileNode root = SnapshotProfile();
  const ProfileNode* phase = Child(root, "test/phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->peak_bytes, baseline + 400);
  // The enclosing high-water mark is restored, not clobbered by the
  // phase-local reset.
  EXPECT_GE(PeakTensorBytes(), baseline + 1000);
}

TEST_F(ProfileTest, ThreadMemoryWindowTracksPerThreadPeak) {
  BeginThreadMemoryWindow();
  OnTensorAlloc(500);
  OnTensorAlloc(300);
  OnTensorFree(500);
  OnTensorAlloc(100);
  EXPECT_EQ(ThreadMemoryWindowPeak(), 800);
  OnTensorFree(300);
  OnTensorFree(100);
  BeginThreadMemoryWindow();
  EXPECT_EQ(ThreadMemoryWindowPeak(), 0);
}

TEST_F(ProfileTest, ConcurrentScopesAndSnapshotsAreClean) {
  // Scoping threads race SnapshotProfile/ClearProfile calls; the test is
  // primarily a TSan target (ctest -L threads) and secondarily checks
  // that a quiesced snapshot sees every thread's tree.
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([]() {
      for (int i = 0; i < kIters; ++i) {
        VGOD_PROFILE_SCOPE("test/mt_outer");
        VGOD_PROFILE_SCOPE("test/mt_inner");
        ProfileAddBytes(8);
      }
    });
  }
  std::thread snapshotter([]() {
    for (int i = 0; i < 50; ++i) {
      const ProfileNode root = SnapshotProfile();
      (void)root;
    }
  });
  for (std::thread& t : workers) t.join();
  snapshotter.join();
  const ProfileNode root = SnapshotProfile();
  const ProfileNode* outer = Child(root, "test/mt_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, int64_t{kThreads} * kIters);
  const ProfileNode* inner = Child(*outer, "test/mt_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->bytes, int64_t{kThreads} * kIters * 8);
  EXPECT_LE(inner->inclusive_ns, outer->inclusive_ns);
}

}  // namespace
}  // namespace vgod::obs
