// Locks down the vgod::par determinism contract (docs/PARALLELISM.md):
// every parallelized kernel must produce bit-identical outputs — and every
// parallelized backward bit-identical gradients — for ANY pool width,
// including widths that do not divide the problem size. The assertions are
// exact (MaxAbsDiff == 0), not tolerance-based: a single reassociated
// float addition is a failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/check.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "datasets/synthetic.h"
#include "detectors/registry.h"
#include "gnn/graph_autograd.h"
#include "graph/graph.h"
#include "graph/graph_ops.h"
#include "tensor/functional.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

// Thread counts the suite sweeps: serial, even split, a prime that does
// not divide anything, and more threads than this container has cores.
const int kSweep[] = {1, 2, 7, 16};

/// Restores the default pool width when a test ends, so suites do not
/// leak thread-count state into each other.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { par::SetNumThreads(par::DefaultNumThreads()); }
};

using ParallelKernelsTest = ParallelTest;
using ParallelGraphOpsTest = ParallelTest;
using ParallelBackwardTest = ParallelTest;
using ParallelEndToEndTest = ParallelTest;

AttributedGraph SmallCommunityGraph(int n, int attribute_dim) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 4;
  spec.avg_degree = 6.0;
  spec.attribute_dim = attribute_dim;
  Rng rng(77);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

// --- ParallelFor mechanics ---

TEST_F(ParallelTest, CoversRangeExactlyOnce) {
  par::SetNumThreads(7);
  const int64_t n = 997;  // Prime: no clean split at any width.
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  par::ParallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, EmptyRangeNeverCallsBody) {
  par::SetNumThreads(4);
  std::atomic<int> calls{0};
  par::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  par::ParallelFor(9, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, SingleElementRange) {
  par::SetNumThreads(16);
  std::atomic<int64_t> sum{0};
  par::ParallelFor(41, 42, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 41);
}

TEST_F(ParallelTest, NestedCallsRunInlineWithoutDeadlock) {
  par::SetNumThreads(4);
  std::atomic<int64_t> total{0};
  par::ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // A kernel calling a kernel: must run inline, not re-enter the pool.
      par::ParallelFor(0, 10, 1, [&](int64_t nlo, int64_t nhi) {
        total.fetch_add(nhi - nlo, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST_F(ParallelTest, GrainLimitsSplitting) {
  // range 10 with grain 8 can support at most ceil(10/8) = 2 chunks.
  par::SetNumThreads(16);
  std::atomic<int> chunks{0};
  par::ParallelFor(0, 10, 8, [&](int64_t, int64_t) { ++chunks; });
  EXPECT_LE(chunks.load(), 2);
}

TEST_F(ParallelTest, SetNumThreadsIsObserved) {
  par::SetNumThreads(7);
  EXPECT_EQ(par::NumThreads(), 7);
  par::SetNumThreads(1);
  EXPECT_EQ(par::NumThreads(), 1);
}

TEST_F(ParallelTest, StatsCountRegions) {
  par::SetNumThreads(4);
  const par::PoolStats before = par::Stats();
  Rng rng(5);
  Tensor a = Tensor::RandomNormal(300, 300, 0, 1, &rng);
  kernels::Relu(a);  // Large enough to dispatch on the pool.
  const par::PoolStats after = par::Stats();
  EXPECT_EQ(after.threads, 4);
  EXPECT_GT(after.regions + after.serial_regions,
            before.regions + before.serial_regions);
}

// --- dense kernels: bit-identity across pool widths ---

/// Runs `op` at 1 thread and at every sweep width; all results must be
/// bit-identical to the serial one.
template <typename Op>
void ExpectThreadInvariant(const char* what, const Op& op) {
  par::SetNumThreads(1);
  const Tensor reference = op();
  for (int threads : kSweep) {
    par::SetNumThreads(threads);
    const Tensor got = op();
    ASSERT_EQ(got.rows(), reference.rows()) << what;
    ASSERT_EQ(got.cols(), reference.cols()) << what;
    EXPECT_EQ(kernels::MaxAbsDiff(got, reference), 0.0f)
        << what << " diverged at " << threads << " threads";
  }
}

TEST_F(ParallelKernelsTest, DenseKernelsAreThreadCountInvariant) {
  Rng rng(11);
  // Awkward shapes: empty, single row, prime dims that divide nothing,
  // and rows >> any per-chunk grain.
  const std::pair<int, int> shapes[] = {{0, 5}, {1, 7}, {17, 13}, {1000, 3}};
  for (const auto& [rows, cols] : shapes) {
    const Tensor a = Tensor::RandomNormal(rows, cols, 0, 1, &rng);
    const Tensor b = Tensor::RandomNormal(rows, cols, 0, 1, &rng);
    const Tensor c = Tensor::RandomNormal(cols, rows, 0, 1, &rng);
    const Tensor row = Tensor::RandomNormal(1, cols, 0, 1, &rng);
    ExpectThreadInvariant("MatMul", [&] { return kernels::MatMul(a, c); });
    ExpectThreadInvariant("MatMulNT", [&] { return kernels::MatMulNT(a, b); });
    ExpectThreadInvariant("MatMulTN", [&] { return kernels::MatMulTN(a, b); });
    ExpectThreadInvariant("Transpose", [&] { return kernels::Transpose(a); });
    ExpectThreadInvariant("Relu", [&] { return kernels::Relu(a); });
    ExpectThreadInvariant("Sigmoid", [&] { return kernels::Sigmoid(a); });
    ExpectThreadInvariant("Tanh", [&] { return kernels::Tanh(a); });
    ExpectThreadInvariant("Add", [&] { return kernels::Add(a, b); });
    ExpectThreadInvariant("Mul", [&] { return kernels::Mul(a, b); });
    ExpectThreadInvariant("AddRowVector",
                          [&] { return kernels::AddRowVector(a, row); });
    ExpectThreadInvariant("RowSums", [&] { return kernels::RowSums(a); });
    ExpectThreadInvariant("ColSums", [&] { return kernels::ColSums(a); });
    ExpectThreadInvariant("RowNorms", [&] { return kernels::RowNorms(a); });
    ExpectThreadInvariant("RowL2Normalize",
                          [&] { return kernels::RowL2Normalize(a, 1e-12f); });
    ExpectThreadInvariant("RowSquaredDistance", [&] {
      return kernels::RowSquaredDistance(a, b);
    });
  }
}

TEST_F(ParallelKernelsTest, InPlaceKernelsAreThreadCountInvariant) {
  Rng rng(13);
  const Tensor base = Tensor::RandomNormal(211, 19, 0, 1, &rng);
  const Tensor other = Tensor::RandomNormal(211, 19, 0, 1, &rng);
  ExpectThreadInvariant("AddInPlace", [&] {
    Tensor t = base.Clone();
    kernels::AddInPlace(&t, other);
    return t;
  });
  ExpectThreadInvariant("AxpyInPlace", [&] {
    Tensor t = base.Clone();
    kernels::AxpyInPlace(&t, 0.37f, other);
    return t;
  });
  ExpectThreadInvariant("ScaleInPlace", [&] {
    Tensor t = base.Clone();
    kernels::ScaleInPlace(&t, -1.25f);
    return t;
  });
}

TEST_F(ParallelKernelsTest, RowsFarExceedingGrainSplitAndStayIdentical) {
  // 20000 x 2: the flat elementwise grain (16k) forces multiple chunks
  // whose boundaries land mid-row for row-based ops.
  Rng rng(17);
  const Tensor a = Tensor::RandomNormal(20000, 2, 0, 1, &rng);
  ExpectThreadInvariant("Relu/tall", [&] { return kernels::Relu(a); });
  ExpectThreadInvariant("RowSums/tall", [&] { return kernels::RowSums(a); });
}

// --- graph ops: bit-identity across pool widths ---

TEST_F(ParallelGraphOpsTest, CsrOpsAreThreadCountInvariant) {
  const AttributedGraph g = SmallCommunityGraph(193, 9);  // Prime n.
  Rng rng(19);
  const Tensor h = Tensor::RandomNormal(g.num_nodes(), 9, 0, 1, &rng);
  const std::vector<float> weights = graph_ops::GcnNormWeights(g);
  ExpectThreadInvariant("Spmm",
                        [&] { return graph_ops::Spmm(g, weights, h); });
  ExpectThreadInvariant("Spmm/unweighted",
                        [&] { return graph_ops::Spmm(g, {}, h); });
  ExpectThreadInvariant("NeighborMean",
                        [&] { return graph_ops::NeighborMean(g, h); });
  ExpectThreadInvariant("NeighborVarianceScore", [&] {
    return graph_ops::NeighborVarianceScore(g, h);
  });
}

TEST_F(ParallelGraphOpsTest, TransposeIndexListsIncomingEdgesInForwardOrder) {
  const AttributedGraph g = SmallCommunityGraph(97, 4);
  const graph_ops::CsrTranspose t = graph_ops::BuildCsrTranspose(g);
  ASSERT_EQ(static_cast<int64_t>(t.src.size()), g.num_directed_edges());
  const auto& row_ptr = g.row_ptr();
  const auto& col_idx = g.col_idx();
  for (int j = 0; j < g.num_nodes(); ++j) {
    for (int64_t s = t.row_ptr[j]; s < t.row_ptr[j + 1]; ++s) {
      // Every transpose slot points back at a forward edge src -> j...
      EXPECT_EQ(col_idx[t.edge[s]], j);
      EXPECT_GE(t.edge[s], row_ptr[t.src[s]]);
      EXPECT_LT(t.edge[s], row_ptr[t.src[s] + 1]);
      // ...and slots are ascending in forward-edge order (the property the
      // deterministic backward gathers rely on).
      if (s > t.row_ptr[j]) EXPECT_GT(t.edge[s], t.edge[s - 1]);
    }
  }
}

// --- autograd backwards: bit-identical gradients across pool widths ---

/// Evaluates loss_fn over fresh parameter clones at 1 thread and at each
/// sweep width; every parameter gradient must match the serial gradients
/// bit for bit.
template <typename LossFn>
void ExpectGradThreadInvariant(const char* what, const LossFn& loss_fn,
                               const std::vector<Tensor>& param_values) {
  auto eval = [&]() {
    std::vector<Variable> params;
    params.reserve(param_values.size());
    for (const Tensor& value : param_values) {
      params.push_back(Variable::Parameter(value.Clone()));
    }
    Variable loss = loss_fn(params);
    loss.Backward();
    std::vector<Tensor> grads;
    grads.reserve(params.size());
    for (Variable& p : params) grads.push_back(p.grad().Clone());
    return grads;
  };

  par::SetNumThreads(1);
  const std::vector<Tensor> reference = eval();
  for (int threads : kSweep) {
    par::SetNumThreads(threads);
    const std::vector<Tensor> got = eval();
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(kernels::MaxAbsDiff(got[i], reference[i]), 0.0f)
          << what << " grad " << i << " diverged at " << threads
          << " threads";
    }
  }
}

TEST_F(ParallelBackwardTest, CsrBackwardsAreThreadCountInvariant) {
  auto g = std::make_shared<const AttributedGraph>(
      SmallCommunityGraph(149, 6));
  Rng rng(23);
  std::vector<float> weights(g->num_directed_edges());
  for (float& w : weights) w = static_cast<float>(rng.Uniform(0.1, 1.0));
  const std::vector<Tensor> params = {
      Tensor::RandomNormal(g->num_nodes(), 6, 0, 1, &rng)};

  ExpectGradThreadInvariant(
      "Spmm",
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::Square(ag::Spmm(g, weights, p[0])));
      },
      params);
  ExpectGradThreadInvariant(
      "NeighborMean",
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::Square(ag::NeighborMean(g, p[0])));
      },
      params);
  ExpectGradThreadInvariant(
      "NeighborVarianceScore",
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(ag::NeighborVarianceScore(g, p[0]));
      },
      params);
}

TEST_F(ParallelBackwardTest, GatAggregateBackwardIsThreadCountInvariant) {
  auto g = std::make_shared<const AttributedGraph>(
      SmallCommunityGraph(101, 5).WithSelfLoops());
  Rng rng(29);
  const std::vector<Tensor> params = {
      Tensor::RandomNormal(g->num_nodes(), 5, 0, 1, &rng),
      Tensor::RandomNormal(g->num_nodes(), 1, 0, 1, &rng),
      Tensor::RandomNormal(g->num_nodes(), 1, 0, 1, &rng)};
  ExpectGradThreadInvariant(
      "GatAggregate",
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(
            ag::Square(ag::GatAggregate(g, p[0], p[1], p[2])));
      },
      params);
}

TEST_F(ParallelBackwardTest, DenseMlpBackwardIsThreadCountInvariant) {
  Rng rng(31);
  const std::vector<Tensor> params = {
      Tensor::RandomNormal(37, 11, 0, 1, &rng),
      Tensor::RandomNormal(11, 13, 0, 1, &rng)};
  ExpectGradThreadInvariant(
      "MLP",
      [&](const std::vector<Variable>& p) {
        return ag::MeanAll(
            ag::Square(ag::Tanh(ag::MatMul(p[0], p[1]))));
      },
      params);
}

// --- end to end: full VGOD Fit + Score is thread-count invariant ---

TEST_F(ParallelEndToEndTest, VgodScoresAreByteIdenticalAcrossThreadCounts) {
  const AttributedGraph g = SmallCommunityGraph(120, 8);
  detectors::DetectorOptions options;
  options.seed = 9;
  options.epoch_scale = 0.3;  // Keep the double-train quick.

  auto run = [&]() {
    auto detector = detectors::MakeDetector("VGOD", options);
    VGOD_CHECK(detector.ok()) << detector.status().ToString();
    Status fit = detector.value()->Fit(g);
    VGOD_CHECK(fit.ok()) << fit.ToString();
    return detector.value()->Score(g);
  };

  par::SetNumThreads(1);
  const detectors::DetectorOutput serial = run();
  par::SetNumThreads(8);
  const detectors::DetectorOutput parallel = run();

  ASSERT_EQ(serial.score.size(), parallel.score.size());
  for (size_t i = 0; i < serial.score.size(); ++i) {
    // Exact double equality: training and scoring must not depend on the
    // pool width in any bit.
    ASSERT_EQ(serial.score[i], parallel.score[i]) << "node " << i;
  }
  ASSERT_EQ(serial.structural_score.size(), parallel.structural_score.size());
  for (size_t i = 0; i < serial.structural_score.size(); ++i) {
    ASSERT_EQ(serial.structural_score[i], parallel.structural_score[i]);
  }
  ASSERT_EQ(serial.contextual_score.size(), parallel.contextual_score.size());
  for (size_t i = 0; i < serial.contextual_score.size(); ++i) {
    ASSERT_EQ(serial.contextual_score[i], parallel.contextual_score[i]);
  }
}

}  // namespace
}  // namespace vgod
