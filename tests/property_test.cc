// Property-style sweeps: randomized inputs over parameter grids, checking
// invariants rather than point values. Complements the example-based suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "eval/metrics.h"
#include "graph/algorithms.h"
#include "graph/graph.h"
#include "graph/graph_ops.h"
#include "graph/sampling.h"
#include "injection/injection.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

// --- random graph construction fuzz: CSR invariants ---

class GraphBuilderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphBuilderFuzzTest, CsrInvariantsHold) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.UniformInt(200));
  const int m = static_cast<int>(rng.UniformInt(4 * n + 1));
  GraphBuilder builder(n);
  for (int e = 0; e < m; ++e) {
    builder.AddEdge(static_cast<int>(rng.UniformInt(n)),
                    static_cast<int>(rng.UniformInt(n)));
  }
  builder.SetAttributes(Tensor::Zeros(n, 3));
  AttributedGraph g = std::move(builder.Build()).value();

  // row_ptr monotone, covering col_idx exactly.
  ASSERT_EQ(static_cast<int>(g.row_ptr().size()), n + 1);
  EXPECT_EQ(g.row_ptr().front(), 0);
  EXPECT_EQ(g.row_ptr().back(), g.num_directed_edges());
  for (int i = 0; i < n; ++i) {
    EXPECT_LE(g.row_ptr()[i], g.row_ptr()[i + 1]);
    auto neighbors = g.Neighbors(i);
    // Sorted, unique, in range, no self loops.
    for (size_t j = 0; j < neighbors.size(); ++j) {
      EXPECT_GE(neighbors[j], 0);
      EXPECT_LT(neighbors[j], n);
      EXPECT_NE(neighbors[j], i);
      if (j > 0) {
        EXPECT_LT(neighbors[j - 1], neighbors[j]);
      }
    }
    // Symmetry: every (i, v) has (v, i).
    for (int32_t v : neighbors) EXPECT_TRUE(g.HasEdge(v, i));
  }
  // Degree sum equals directed edge count.
  int64_t degree_sum = 0;
  for (int i = 0; i < n; ++i) degree_sum += g.Degree(i);
  EXPECT_EQ(degree_sum, g.num_directed_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphBuilderFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

// --- matmul algebraic properties on random matrices ---

class MatMulPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatMulPropertyTest, AssociativityAndDistributivity) {
  Rng rng(GetParam());
  const int a = 2 + static_cast<int>(rng.UniformInt(6));
  const int b = 2 + static_cast<int>(rng.UniformInt(6));
  const int c = 2 + static_cast<int>(rng.UniformInt(6));
  const int d = 2 + static_cast<int>(rng.UniformInt(6));
  Tensor x = Tensor::RandomNormal(a, b, 0, 1, &rng);
  Tensor y = Tensor::RandomNormal(b, c, 0, 1, &rng);
  Tensor z = Tensor::RandomNormal(c, d, 0, 1, &rng);
  Tensor y2 = Tensor::RandomNormal(b, c, 0, 1, &rng);
  // (xy)z == x(yz)
  EXPECT_LT(kernels::MaxAbsDiff(
                kernels::MatMul(kernels::MatMul(x, y), z),
                kernels::MatMul(x, kernels::MatMul(y, z))),
            1e-3f);
  // x(y + y2) == xy + xy2
  EXPECT_LT(kernels::MaxAbsDiff(
                kernels::MatMul(x, kernels::Add(y, y2)),
                kernels::Add(kernels::MatMul(x, y), kernels::MatMul(x, y2))),
            1e-3f);
  // (xy)^T == y^T x^T
  EXPECT_LT(kernels::MaxAbsDiff(
                kernels::Transpose(kernels::MatMul(x, y)),
                kernels::MatMul(kernels::Transpose(y),
                                kernels::Transpose(x))),
            1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulPropertyTest,
                         ::testing::Range<uint64_t>(20, 30));

// --- injection invariants across a parameter grid ---

struct InjectionGridCase {
  int num_cliques;
  int clique_size;
  int candidate_set;
};

class InjectionGridTest
    : public ::testing::TestWithParam<InjectionGridCase> {};

TEST_P(InjectionGridTest, StandardInjectionInvariants) {
  const InjectionGridCase& param = GetParam();
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = 500;
  spec.avg_degree = 5.0;
  spec.attribute_dim = 24;
  Rng gen_rng(101);
  AttributedGraph g = datasets::GeneratePlantedPartition(spec, &gen_rng);
  Rng rng(param.num_cliques * 1000 + param.clique_size);
  injection::InjectionResult result =
      std::move(injection::InjectStandard(g, param.num_cliques,
                                          param.clique_size,
                                          param.candidate_set, &rng))
          .value();

  const int expected = param.num_cliques * param.clique_size;
  int structural = 0, contextual = 0, both = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    structural += result.structural[i];
    contextual += result.contextual[i];
    both += result.structural[i] && result.contextual[i];
  }
  EXPECT_EQ(structural, expected);
  EXPECT_EQ(contextual, expected);
  EXPECT_EQ(both, 0);

  // Non-victims keep degree and attributes.
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (!result.combined[i]) {
      EXPECT_EQ(result.graph.Degree(i), g.Degree(i));
    }
    if (result.structural[i]) {
      EXPECT_GE(result.graph.Degree(i), param.clique_size - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InjectionGridTest,
    ::testing::Values(InjectionGridCase{1, 3, 5}, InjectionGridCase{2, 5, 10},
                      InjectionGridCase{3, 10, 50},
                      InjectionGridCase{2, 15, 50},
                      InjectionGridCase{5, 4, 20},
                      InjectionGridCase{1, 25, 2}),
    [](const ::testing::TestParamInfo<InjectionGridCase>& param_info) {
      return "p" + std::to_string(param_info.param.num_cliques) + "q" +
             std::to_string(param_info.param.clique_size) + "k" +
             std::to_string(param_info.param.candidate_set);
    });

// --- AUC properties on random score vectors ---

class AucPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AucPropertyTest, ComplementAndShiftInvariance) {
  Rng rng(GetParam());
  const int n = 50 + static_cast<int>(rng.UniformInt(200));
  std::vector<double> scores(n);
  std::vector<uint8_t> labels(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = rng.Normal();
    labels[i] = rng.Bernoulli(0.2);
  }
  labels[0] = 1;
  labels[1] = 0;
  const double auc = eval::Auc(scores, labels);

  // Negating scores flips the AUC.
  std::vector<double> negated(n);
  for (int i = 0; i < n; ++i) negated[i] = -scores[i];
  EXPECT_NEAR(eval::Auc(negated, labels), 1.0 - auc, 1e-9);

  // Affine positive transform preserves it.
  std::vector<double> shifted(n);
  for (int i = 0; i < n; ++i) shifted[i] = 3.0 * scores[i] + 17.0;
  EXPECT_NEAR(eval::Auc(shifted, labels), auc, 1e-9);

  // Mean-std normalization preserves it too.
  EXPECT_NEAR(eval::Auc(eval::MeanStdNormalize(scores), labels), auc, 1e-9);

  // Rank normalization preserves it.
  EXPECT_NEAR(eval::Auc(eval::RankNormalize(scores), labels), auc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucPropertyTest,
                         ::testing::Range<uint64_t>(40, 52));

// --- negative sampling across densities ---

class NegativeSamplingDensityTest
    : public ::testing::TestWithParam<double> {};

TEST_P(NegativeSamplingDensityTest, InvariantsAcrossDensity) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = 150;
  spec.avg_degree = GetParam();
  spec.attribute_dim = 4;
  Rng gen_rng(3);
  AttributedGraph g = datasets::GeneratePlantedPartition(spec, &gen_rng);
  Rng rng(9);
  AttributedGraph neg = BuildNegativeGraph(g, &rng);
  for (int u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(neg.Degree(u), g.Degree(u));
    for (int32_t v : neg.Neighbors(u)) {
      EXPECT_FALSE(g.HasEdge(u, v));
      EXPECT_NE(u, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, NegativeSamplingDensityTest,
                         ::testing::Values(1.0, 4.0, 12.0, 40.0));

// --- graph algorithm cross-checks on random graphs ---

class AlgorithmCrossCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgorithmCrossCheckTest, TriangleSumConsistency) {
  Rng rng(GetParam());
  const int n = 30 + static_cast<int>(rng.UniformInt(80));
  std::vector<std::pair<int, int>> edges;
  const int m = static_cast<int>(rng.UniformInt(5 * n));
  for (int e = 0; e < m; ++e) {
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u != v) edges.emplace_back(u, v);
  }
  AttributedGraph g =
      std::move(AttributedGraph::FromEdgeList(n, edges, Tensor::Ones(n, 1)))
          .value();

  // Brute-force triangle count vs the sorted-intersection kernel.
  const std::vector<int64_t> fast = graph_algorithms::TriangleCounts(g);
  std::vector<int64_t> brute(n, 0);
  for (int u = 0; u < n; ++u) {
    for (int32_t v : g.Neighbors(u)) {
      if (v <= u) continue;
      for (int32_t w : g.Neighbors(v)) {
        if (w <= v) continue;
        if (g.HasEdge(u, w)) {
          ++brute[u];
          ++brute[v];
          ++brute[w];
        }
      }
    }
  }
  EXPECT_EQ(fast, brute);

  // Core numbers: every node's core <= degree, and the k-core subgraph
  // induced by {core >= k} has min degree >= k within itself for k = 2.
  const std::vector<int> core = graph_algorithms::CoreNumbers(g);
  for (int i = 0; i < n; ++i) EXPECT_LE(core[i], g.Degree(i));
  for (int i = 0; i < n; ++i) {
    if (core[i] < 2) continue;
    int internal_degree = 0;
    for (int32_t v : g.Neighbors(i)) internal_degree += core[v] >= 2;
    EXPECT_GE(internal_degree, 2) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmCrossCheckTest,
                         ::testing::Range<uint64_t>(60, 70));

}  // namespace
}  // namespace vgod
