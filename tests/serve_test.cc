// Tests for the serving subsystem: model bundles (round-trip and loud
// failure on corrupt/mismatched files), the micro-batching scoring
// engine, registry thread-safety, and a concurrent-client smoke test
// against a live HTTP scoring server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "datasets/registry.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/access_log.h"
#include "serve/forensics.h"
#include "datasets/synthetic.h"
#include "detectors/bundle.h"
#include "detectors/registry.h"
#include "detectors/serialize.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"
#include "serve/engine.h"
#include "serve/http.h"
#include "serve/server.h"

namespace vgod {
namespace {

using namespace ::vgod::detectors;  // NOLINT: test-local convenience.

AttributedGraph TestGraph(int n = 80, uint64_t seed = 1) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 4;
  spec.avg_degree = 4.0;
  spec.attribute_dim = 12;
  spec.topic_dims_per_community = 3;
  Rng rng(seed);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

VbmConfig TinyVbm() {
  VbmConfig config;
  config.hidden_dim = 8;
  config.epochs = 3;
  return config;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Model bundles.

TEST(BundleTest, VbmRoundTripIsBitIdentical) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  const DetectorOutput expected = trained.Score(graph);

  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle.value().detector, "VBM");

  const std::string path = TempPath("vbm_roundtrip.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());
  Result<ModelBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Result<std::unique_ptr<OutlierDetector>> restored =
      MakeDetectorFromBundle(loaded.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const DetectorOutput got = restored.value()->Score(graph);
  ASSERT_EQ(got.score.size(), expected.score.size());
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(got.score[i], expected.score[i]) << "node " << i;
  }
}

TEST(BundleTest, VgodRoundTripPreservesComponents) {
  AttributedGraph graph = TestGraph();
  VgodConfig config;
  config.vbm = TinyVbm();
  config.arm.hidden_dim = 8;
  config.arm.epochs = 3;
  Vgod trained(config);
  ASSERT_TRUE(trained.Fit(graph).ok());
  const DetectorOutput expected = trained.Score(graph);

  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::string path = TempPath("vgod_roundtrip.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());
  Result<ModelBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Result<std::unique_ptr<OutlierDetector>> restored =
      MakeDetectorFromBundle(loaded.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const DetectorOutput got = restored.value()->Score(graph);
  ASSERT_TRUE(got.has_components());
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(got.score[i], expected.score[i]);
    EXPECT_EQ(got.structural_score[i], expected.structural_score[i]);
    EXPECT_EQ(got.contextual_score[i], expected.contextual_score[i]);
  }
}

TEST(BundleTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.vgodb");
  std::ofstream(path) << "definitely not a bundle";
  Result<ModelBundle> loaded = LoadBundle(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(BundleTest, LoadRejectsCorruptPayload) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("corrupt.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());

  // Flip one byte in the middle of the parameter payload; the checksum
  // must catch it.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x5a;
  std::ofstream(path, std::ios::binary) << bytes;

  Result<ModelBundle> loaded = LoadBundle(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(BundleTest, LoadRejectsTruncatedFile) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("truncated.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() * 2 / 3);

  Result<ModelBundle> loaded = LoadBundle(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(BundleTest, RestoreRejectsShapeMismatch) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());

  // Swap in a parameter tensor with the wrong shape.
  ModelBundle tampered = bundle.value();
  ASSERT_FALSE(tampered.params.empty());
  tampered.params[0] = Tensor::Zeros(3, 3);
  Result<std::unique_ptr<OutlierDetector>> restored =
      MakeDetectorFromBundle(tampered);
  EXPECT_FALSE(restored.ok());
}

TEST(BundleTest, RestoreRejectsWrongDetectorName) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());

  Vgod other;
  EXPECT_FALSE(other.RestoreFromBundle(bundle.value()).ok());
}

TEST(BundleTest, LoadFallsBackToLegacyParameterList) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  const std::string path = TempPath("legacy.params");
  ASSERT_TRUE(trained.Save(path).ok());

  // The legacy text format loads as an anonymous bundle: parameters only.
  Result<ModelBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().detector.empty());
  EXPECT_FALSE(loaded.value().params.empty());

  // Anonymous bundles cannot name their detector, so the registry path
  // must refuse them rather than guess.
  EXPECT_FALSE(MakeDetectorFromBundle(loaded.value()).ok());

  // The caller that does know the architecture can still restore.
  Vbm manual(TinyVbm());
  ASSERT_TRUE(manual.Load(path).ok());
  const DetectorOutput expected = trained.Score(graph);
  const DetectorOutput got = manual.Score(graph);
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(got.score[i], expected.score[i]);
  }
}

// ---------------------------------------------------------------------------
// Scoring engine.

using serve::ScoringEngine;

std::unique_ptr<ScoringEngine> MakeDegNormEngine(const AttributedGraph& graph,
                                                 serve::EngineConfig config) {
  auto detector = std::make_unique<DegNorm>();
  VGOD_CHECK(detector->Fit(graph).ok());
  return std::make_unique<ScoringEngine>(std::move(detector), graph, config);
}

TEST(ScoringEngineTest, ServedScoresMatchInProcessScore) {
  AttributedGraph graph = TestGraph();
  DegNorm reference;
  ASSERT_TRUE(reference.Fit(graph).ok());
  const DetectorOutput expected = reference.Score(graph);

  serve::EngineConfig config;
  config.num_threads = 2;
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());
  Result<serve::ScoreResult> result = engine->ScoreNodes({0, 5, 17});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().score[0], expected.score[0]);
  EXPECT_EQ(result.value().score[1], expected.score[5]);
  EXPECT_EQ(result.value().score[2], expected.score[17]);
  engine->Shutdown();
}

TEST(ScoringEngineTest, BatcherFlushesOnSize) {
  AttributedGraph graph = TestGraph();
  serve::EngineConfig config;
  config.num_threads = 1;
  config.max_batch = 3;
  config.max_delay_us = 10'000'000;  // Effectively never; size must flush.
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<serve::ScoreResult>>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine->SubmitNodes({i}));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

  EXPECT_EQ(engine->score_calls(), 1);  // One Score() answered all three.
  EXPECT_LT(elapsed_s, 5.0);  // Flushed on size, not the 10s deadline.
  engine->Shutdown();
}

TEST(ScoringEngineTest, BatcherFlushesOnDeadline) {
  AttributedGraph graph = TestGraph();
  serve::EngineConfig config;
  config.num_threads = 1;
  config.max_batch = 100;  // Unreachable; the deadline must flush.
  config.max_delay_us = 30'000;
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());

  std::vector<std::future<Result<serve::ScoreResult>>> futures;
  futures.push_back(engine->SubmitNodes({1}));
  futures.push_back(engine->SubmitNodes({2}));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(engine->score_calls(), 1);
  engine->Shutdown();
}

TEST(ScoringEngineTest, RejectsInvalidNodeIdsWithoutPoisoningBatch) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  ASSERT_TRUE(engine->Start().ok());

  Result<serve::ScoreResult> bad = engine->ScoreNodes({-1});
  EXPECT_FALSE(bad.ok());
  Result<serve::ScoreResult> too_big =
      engine->ScoreNodes({graph.num_nodes()});
  EXPECT_FALSE(too_big.ok());
  Result<serve::ScoreResult> good = engine->ScoreNodes({0});
  EXPECT_TRUE(good.ok());
  engine->Shutdown();
}

TEST(ScoringEngineTest, SubgraphScoringMatchesAndValidatesSchema) {
  AttributedGraph graph = TestGraph();
  DegNorm reference;
  ASSERT_TRUE(reference.Fit(graph).ok());
  const DetectorOutput expected = reference.Score(graph);

  auto engine = MakeDegNormEngine(graph, {});
  ASSERT_TRUE(engine->Start().ok());

  Result<serve::ScoreResult> result = engine->ScoreGraph(graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().score.size(), expected.score.size());
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(result.value().score[i], expected.score[i]);
  }

  // A subgraph with a different attribute schema must be rejected, not
  // crash a kernel assertion.
  AttributedGraph mismatched = TestGraph(40, 9);
  mismatched.SetAttributes(Tensor::Zeros(40, 5));
  Result<serve::ScoreResult> rejected =
      engine->ScoreGraph(std::move(mismatched));
  EXPECT_FALSE(rejected.ok());
  engine->Shutdown();
}

// A detector whose Score() blocks until the test releases it — used to
// deterministically fill the bounded queue.
class BlockingDetector : public OutlierDetector {
 public:
  std::string name() const override { return "Blocking"; }
  Status Fit(const AttributedGraph&) override { return Status::Ok(); }

  DetectorOutput Score(const AttributedGraph& graph) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return tokens_ > 0; });
      --tokens_;
    }
    DetectorOutput out;
    out.score.assign(graph.num_nodes(), 1.0);
    return out;
  }

  void WaitForScoreEntry(int n) const {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this, n] { return entered_ >= n; });
  }

  void Release(int n) const {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tokens_ += n;
    }
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable release_cv_;
  mutable int entered_ = 0;
  mutable int tokens_ = 0;
};

TEST(ScoringEngineTest, StageTimingThreadsThroughRequests) {
  AttributedGraph graph = TestGraph();
  serve::EngineConfig config;
  config.num_threads = 1;
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());

  // Caller-supplied id is echoed back through the timing record.
  Result<serve::ScoreResult> tagged = engine->ScoreNodes({0, 1}, 12345);
  ASSERT_TRUE(tagged.ok()) << tagged.status().ToString();
  EXPECT_EQ(tagged.value().timing.request_id, 12345u);
  EXPECT_GE(tagged.value().timing.batch_size, 1);
  EXPECT_GE(tagged.value().timing.queue_wait_seconds, 0.0);
  EXPECT_GE(tagged.value().timing.batch_assembly_seconds, 0.0);
  EXPECT_GT(tagged.value().timing.score_seconds, 0.0);

  // With no caller id the engine assigns a nonzero one.
  Result<serve::ScoreResult> assigned = engine->ScoreNodes({2});
  ASSERT_TRUE(assigned.ok());
  EXPECT_GT(assigned.value().timing.request_id, 0u);

  // Subgraph requests time the same stages with batch_size 1.
  Result<serve::ScoreResult> subgraph = engine->ScoreGraph(graph, 777);
  ASSERT_TRUE(subgraph.ok());
  EXPECT_EQ(subgraph.value().timing.request_id, 777u);
  EXPECT_EQ(subgraph.value().timing.batch_size, 1);

  // The stage histograms saw every request.
  obs::Histogram* queue_wait = obs::MetricsRegistry::Global().GetHistogram(
      "serve.stage.queue_wait.seconds", obs::DefaultLatencyBounds());
  obs::Histogram* score = obs::MetricsRegistry::Global().GetHistogram(
      "serve.stage.score.seconds", obs::DefaultLatencyBounds());
  EXPECT_GE(queue_wait->Count(), 3);
  EXPECT_GE(score->Count(), 3);
  engine->Shutdown();

  serve::EngineStats stats = engine->stats();
  EXPECT_GE(stats.requests_served, 3);
  EXPECT_GE(stats.batches_flushed, 1);
  EXPECT_EQ(stats.shed, 0);
}

TEST(ScoringEngineTest, FullQueueShedsLoad) {
  AttributedGraph graph = TestGraph();
  auto blocking = std::make_unique<BlockingDetector>();
  const BlockingDetector* control = blocking.get();
  serve::EngineConfig config;
  config.num_threads = 1;
  config.max_batch = 1;
  config.max_queue = 1;
  ScoringEngine engine(std::move(blocking), graph, config);
  ASSERT_TRUE(engine.Start().ok());

  // First request occupies the worker (blocked inside Score)...
  std::future<Result<serve::ScoreResult>> first = engine.SubmitNodes({0});
  control->WaitForScoreEntry(1);
  // ...second fills the queue; third must be shed with an error, fast.
  std::future<Result<serve::ScoreResult>> second = engine.SubmitNodes({1});
  Result<serve::ScoreResult> shed = engine.SubmitNodes({2}).get();
  EXPECT_FALSE(shed.ok());

  control->Release(2);
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  engine.Shutdown();
}

TEST(ScoringEngineTest, ShutdownDrainsInFlightWork) {
  AttributedGraph graph = TestGraph();
  serve::EngineConfig config;
  config.num_threads = 2;
  config.max_batch = 4;
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());

  std::vector<std::future<Result<serve::ScoreResult>>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine->SubmitNodes({i}));
  engine->Shutdown();
  // Every accepted request resolved (successfully or with a drain error);
  // none may be abandoned.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
  Result<serve::ScoreResult> after = engine->ScoreNodes({0});
  EXPECT_FALSE(after.ok());
}

// ---------------------------------------------------------------------------
// Registry thread-safety.

TEST(RegistryThreadSafetyTest, ConcurrentRegisterAndMake) {
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &failures]() {
      const std::string det_name = "test-det-" + std::to_string(t);
      RegisterDetector(det_name, [](const DetectorOptions&) {
        return Result<std::unique_ptr<OutlierDetector>>(
            std::make_unique<DegNorm>());
      });
      datasets::RegisterDataset(
          "test-ds-" + std::to_string(t),
          [](double, uint64_t) {
            return Result<datasets::Dataset>(
                Status::FailedPrecondition("test dataset"));
          });
      for (int i = 0; i < 20; ++i) {
        Result<std::unique_ptr<OutlierDetector>> made =
            MakeDetector(i % 2 == 0 ? "DegNorm" : det_name);
        if (!made.ok()) failures.fetch_add(1);
        if (RegisteredDetectorNames().empty()) failures.fetch_add(1);
        if (datasets::RegisteredDatasetNames().empty()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);

  const std::vector<std::string> names = RegisteredDetectorNames();
  for (int t = 0; t < kThreads; ++t) {
    const std::string expected = "test-det-" + std::to_string(t);
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
  }
}

// ---------------------------------------------------------------------------
// Live HTTP server smoke test with concurrent clients.

// Minimal loopback HTTP/1.1 client for the smoke test.
Result<std::pair<int, std::string>> HttpRoundTrip(int port,
                                                  const std::string& method,
                                                  const std::string& target,
                                                  const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect() failed");
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\nConnection: close\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return Status::IoError("malformed response");
  const int status = std::atoi(response.c_str() + space + 1);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("missing header terminator");
  }
  return std::make_pair(status, response.substr(header_end + 4));
}

// Sends `request` verbatim (no header fix-ups) and returns the status
// code — for exercising the transport with malformed headers that
// HttpRoundTrip could never produce.
Result<int> RawHttpStatus(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect() failed");
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return Status::IoError("malformed response");
  return std::atoi(response.c_str() + space + 1);
}

std::string RawRequestWithContentLength(const std::string& length_token) {
  return "POST /score HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n"
         "Content-Length: " +
         length_token + "\r\n\r\n";
}

TEST(ScoringServerTest, MalformedContentLengthGetsCleanHttpErrors) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Trailing garbage after the digits: the pre-fix parser (atoi-style)
  // accepted "123abc" as 123; now the full token must validate.
  Result<int> trailing =
      RawHttpStatus(port, RawRequestWithContentLength("123abc"));
  ASSERT_TRUE(trailing.ok()) << trailing.status().ToString();
  EXPECT_EQ(trailing.value(), 400);

  Result<int> negative =
      RawHttpStatus(port, RawRequestWithContentLength("-5"));
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative.value(), 400);

  Result<int> empty = RawHttpStatus(port, RawRequestWithContentLength(""));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value(), 400);

  // Well-formed but absurd lengths are "too large", not "bad request" —
  // including values that overflow the parser's integer type.
  Result<int> oversized =
      RawHttpStatus(port, RawRequestWithContentLength("99999999999"));
  ASSERT_TRUE(oversized.ok());
  EXPECT_EQ(oversized.value(), 413);

  Result<int> overflow = RawHttpStatus(
      port, RawRequestWithContentLength("99999999999999999999999999"));
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(overflow.value(), 413);

  // None of the rejections may take the server down.
  Result<std::pair<int, std::string>> health =
      HttpRoundTrip(port, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().first, 200);

  server.Stop();
}

// Sends `request` verbatim and returns every byte the server wrote until
// it closed the connection — for asserting on multi-response exchanges
// (pipelining) and response headers.
Result<std::string> RawHttpExchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect() failed");
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ScoringServerTest, PipelinedRequestsAnswerInOrder) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  // Two requests with distinguishable bodies in ONE TCP segment; the
  // second asks for close so EOF delimits the exchange. The transport
  // must answer both, in order, on the one connection.
  const std::string pipelined =
      "GET /healthz/ready HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Length: 0\r\n\r\n"
      "GET /healthz/live HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Length: 0\r\nConnection: close\r\n\r\n";
  Result<std::string> exchange = RawHttpExchange(server.port(), pipelined);
  ASSERT_TRUE(exchange.ok()) << exchange.status().ToString();
  const std::string& wire = exchange.value();

  const size_t first = wire.find("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos) << wire;
  const size_t second = wire.find("HTTP/1.1 200", first + 1);
  ASSERT_NE(second, std::string::npos) << wire;
  const size_t ready = wire.find("\"status\":\"ready\"");
  const size_t live = wire.find("\"status\":\"live\"");
  ASSERT_NE(ready, std::string::npos) << wire;
  ASSERT_NE(live, std::string::npos) << wire;
  EXPECT_LT(ready, live) << "pipelined responses out of order:\n" << wire;
  // First response keeps the connection, the close-flagged one ends it.
  EXPECT_NE(wire.find("connection: keep-alive"), std::string::npos) << wire;
  EXPECT_NE(wire.find("connection: close"), std::string::npos) << wire;

  server.Stop();
}

TEST(ScoringServerTest, Http10DefaultsToConnectionClose) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  // No connection header at all: an HTTP/1.0 client must get close (and
  // EOF — RawHttpExchange returning at all proves the server closed).
  Result<std::string> exchange = RawHttpExchange(
      server.port(),
      "GET /healthz/live HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n");
  ASSERT_TRUE(exchange.ok()) << exchange.status().ToString();
  EXPECT_NE(exchange.value().find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(exchange.value().find("connection: close"), std::string::npos)
      << exchange.value();

  // An unknown protocol version is rejected outright.
  Result<int> bad_version = RawHttpStatus(
      server.port(), "GET /healthz HTTP/2.0\r\nHost: 127.0.0.1\r\n\r\n");
  ASSERT_TRUE(bad_version.ok());
  EXPECT_EQ(bad_version.value(), 400);

  server.Stop();
}

TEST(ScoringServerTest, DuplicateContentLengthRejected) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  // Two Content-Length headers — even agreeing ones — are a smuggling
  // vector under pipelining (parsers that disagree on which wins
  // disagree on where the next request starts) and must be rejected.
  Result<int> conflicting = RawHttpStatus(
      server.port(),
      "POST /score HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Length: 2\r\nContent-Length: 7\r\n\r\n{}");
  ASSERT_TRUE(conflicting.ok());
  EXPECT_EQ(conflicting.value(), 400);

  Result<int> duplicate = RawHttpStatus(
      server.port(),
      "POST /score HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Length: 2\r\nContent-Length: 2\r\n\r\n{}");
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate.value(), 400);

  server.Stop();
}

TEST(ScoringServerTest, OversizedHeadersGet431) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  // A 100KB header block blows the 64KB cap: 431 (RFC 6585), not 413 —
  // the oversized thing is the header section, not a payload.
  std::string request = "GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  request += "X-Padding: " + std::string(100 * 1024, 'a') + "\r\n\r\n";
  Result<int> status = RawHttpStatus(server.port(), request);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status.value(), 431);

  server.Stop();
}

TEST(QueryParamTest, PercentDecodesValues) {
  Result<std::string> plain = serve::QueryParam("format=json", "format");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value(), "json");

  Result<std::string> encoded =
      serve::QueryParam("format=%6a%73%6F%6e", "format");
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value(), "json");

  Result<std::string> plus = serve::QueryParam("q=a+b", "q");
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(plus.value(), "a b");

  Result<std::string> absent = serve::QueryParam("a=1&b=2", "c");
  ASSERT_TRUE(absent.ok());
  EXPECT_TRUE(absent.value().empty());

  // Malformed escapes are errors, not passed through raw.
  EXPECT_FALSE(serve::QueryParam("q=%zz", "q").ok());
  EXPECT_FALSE(serve::QueryParam("q=%a", "q").ok());
  EXPECT_FALSE(serve::QueryParam("q=%", "q").ok());
}

TEST(ScoringServerTest, PercentEncodedQueryParamsReachEndpoints) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  // "%6a%73%6f%6e" decodes to "json".
  Result<std::pair<int, std::string>> decoded =
      HttpRoundTrip(server.port(), "GET", "/metrics?format=%6a%73%6f%6e", "");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().first, 200);

  Result<std::pair<int, std::string>> malformed =
      HttpRoundTrip(server.port(), "GET", "/metrics?format=%zz", "");
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed.value().first, 400);

  server.Stop();
}

// Like HttpRoundTrip but returns the raw response (status line + headers
// + body) so tests can assert on headers like content-type.
Result<std::string> HttpRoundTripRaw(int port, const std::string& method,
                                     const std::string& target,
                                     const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect() failed");
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\nConnection: close\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// Access log + slow-request forensics.

TEST(AccessLogTest, RequestIdsAreMonotonicAndNonZero) {
  uint64_t prev = serve::NextRequestId();
  EXPECT_GT(prev, 0u);
  for (int i = 0; i < 100; ++i) {
    const uint64_t next = serve::NextRequestId();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(AccessLogTest, RecordJsonRoundTrips) {
  serve::AccessRecord record;
  record.request_id = 9;
  record.path = "/score";
  record.status = 503;
  record.num_nodes = 4;
  record.batch_size = 2;
  record.shed = true;
  record.error_class = "unavailable";
  record.parse_us = 10;
  record.queue_wait_us = 20;
  record.batch_assembly_us = 30;
  record.score_us = 40;
  record.serialize_us = 50;
  record.total_us = 160;

  Result<obs::JsonValue> parsed =
      obs::ParseJson(serve::AccessRecordToJson(record));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = parsed.value();
  EXPECT_EQ(root.at("id").number(), 9.0);
  EXPECT_EQ(root.at("path").string_value(), "/score");
  EXPECT_EQ(root.at("status").number(), 503.0);
  EXPECT_EQ(root.at("nodes").number(), 4.0);
  EXPECT_EQ(root.at("batch_size").number(), 2.0);
  EXPECT_TRUE(root.at("shed").boolean());
  EXPECT_EQ(root.at("error_class").string_value(), "unavailable");
  EXPECT_EQ(root.at("queue_wait_us").number(), 20.0);
  EXPECT_EQ(root.at("total_us").number(), 160.0);
}

TEST(AccessLogTest, WritesOneParsableJsonLinePerRecord) {
  const std::string path = TempPath("access_log_test.jsonl");
  std::remove(path.c_str());
  Result<std::unique_ptr<serve::AccessLog>> log = serve::AccessLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (int i = 1; i <= 3; ++i) {
    serve::AccessRecord record;
    record.request_id = static_cast<uint64_t>(i);
    record.path = "/score";
    record.total_us = i * 100;
    log.value()->Record(record);
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    Result<obs::JsonValue> parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << "line " << lines << ": " << line;
    EXPECT_EQ(parsed.value().at("id").number(), static_cast<double>(lines));
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(AccessLogTest, OpenRejectsUnwritablePath) {
  EXPECT_FALSE(serve::AccessLog::Open("/nonexistent-dir/access.log").ok());
}

TEST(SlowRequestTrackerTest, KeepsKSlowestSorted) {
  serve::SlowRequestTracker tracker(3);
  for (int total : {50, 10, 90, 30, 70, 20}) {
    serve::AccessRecord record;
    record.request_id = static_cast<uint64_t>(total);
    record.total_us = total;
    tracker.Record(record);
  }
  const std::vector<serve::AccessRecord> slowest = tracker.Snapshot();
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_EQ(slowest[0].total_us, 90);
  EXPECT_EQ(slowest[1].total_us, 70);
  EXPECT_EQ(slowest[2].total_us, 50);

  Result<obs::JsonValue> parsed = obs::ParseJson(tracker.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().at("capacity").number(), 3.0);
  EXPECT_EQ(parsed.value().at("count").number(), 3.0);
  EXPECT_EQ(parsed.value().at("slowest").array().size(), 3u);
}

// ---------------------------------------------------------------------------
// Request-scoped observability against a live server.

TEST(ScoringServerTest, MetricsExpositionFormatsAgree) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Drive a couple of scoring requests so the stage histograms fill.
  for (int i = 0; i < 3; ++i) {
    Result<std::pair<int, std::string>> reply =
        HttpRoundTrip(port, "POST", "/score", "{\"nodes\":[1,2]}");
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply.value().first, 200);
    // Every /score response carries its request id.
    EXPECT_NE(reply.value().second.find("\"request_id\":"),
              std::string::npos);
  }

  // JSON scrape, then Prometheus scrape. serve.requests.total only moves
  // on /score, so the two scrapes must agree on it.
  Result<std::pair<int, std::string>> json_reply =
      HttpRoundTrip(port, "GET", "/metrics", "");
  ASSERT_TRUE(json_reply.ok());
  ASSERT_EQ(json_reply.value().first, 200);
  Result<obs::JsonValue> json = obs::ParseJson(json_reply.value().second);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  const double requests_total =
      json.value().at("counters").at("serve.requests.total").number();
  EXPECT_GE(requests_total, 3.0);

  Result<std::string> prom_raw =
      HttpRoundTripRaw(port, "GET", "/metrics?format=prometheus", "");
  ASSERT_TRUE(prom_raw.ok());
  const std::string& prom = prom_raw.value();
  EXPECT_NE(prom.find(" 200 "), std::string::npos);
  // Satellite: content types come from one construction site each.
  EXPECT_NE(prom.find("content-type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE serve_requests_total counter"),
            std::string::npos);
  std::string expected_line = "\nserve_requests_total ";
  {
    std::string count;
    obs::AppendJsonNumber(&count, requests_total);
    expected_line += count + "\n";
  }
  EXPECT_NE(prom.find(expected_line), std::string::npos) << prom;
  // Stage histograms appear in exposition form.
  EXPECT_NE(prom.find("serve_stage_score_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);

  Result<std::string> json_raw = HttpRoundTripRaw(port, "GET", "/metrics", "");
  ASSERT_TRUE(json_raw.ok());
  EXPECT_NE(json_raw.value().find("content-type: application/json"),
            std::string::npos);

  Result<std::pair<int, std::string>> bad_format =
      HttpRoundTrip(port, "GET", "/metrics?format=xml", "");
  ASSERT_TRUE(bad_format.ok());
  EXPECT_EQ(bad_format.value().first, 400);

  server.Stop();
}

TEST(ScoringServerTest, DebugSlowReturnsStageBreakdowns) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0, /*slow_ring=*/4);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  for (int i = 0; i < 6; ++i) {
    Result<std::pair<int, std::string>> reply =
        HttpRoundTrip(port, "POST", "/score", "{\"nodes\":[0]}");
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply.value().first, 200);
  }

  Result<std::pair<int, std::string>> slow =
      HttpRoundTrip(port, "GET", "/debug/slow", "");
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow.value().first, 200);
  Result<obs::JsonValue> parsed = obs::ParseJson(slow.value().second);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = parsed.value();
  EXPECT_EQ(root.at("capacity").number(), 4.0);
  const obs::JsonValue::Array& slowest = root.at("slowest").array();
  ASSERT_GE(slowest.size(), 1u);
  ASSERT_LE(slowest.size(), 4u);
  int64_t prev_total = std::numeric_limits<int64_t>::max();
  for (const obs::JsonValue& entry : slowest) {
    EXPECT_GT(entry.at("id").number(), 0.0);
    EXPECT_EQ(entry.at("path").string_value(), "/score");
    const int64_t total = static_cast<int64_t>(entry.at("total_us").number());
    EXPECT_GT(total, 0);
    EXPECT_LE(total, prev_total);  // Slowest first.
    prev_total = total;
    // The stage fields decompose the total.
    const double stage_sum = entry.at("queue_wait_us").number() +
                             entry.at("batch_assembly_us").number() +
                             entry.at("score_us").number() +
                             entry.at("parse_us").number() +
                             entry.at("serialize_us").number();
    EXPECT_LE(stage_sum, static_cast<double>(total) + 1.0);
  }

  server.Stop();
}

TEST(ScoringServerTest, ConcurrentClientsAgainstLiveServer) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  DegNorm reference;
  ASSERT_TRUE(reference.Fit(graph).ok());
  const DetectorOutput expected = reference.Score(graph);

  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  ASSERT_GT(port, 0);

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      const std::string body =
          "{\"nodes\":[" + std::to_string(c) + "," +
          std::to_string(c + 10) + "]}";
      for (int i = 0; i < 5; ++i) {
        Result<std::pair<int, std::string>> reply =
            HttpRoundTrip(port, "POST", "/score", body);
        if (!reply.ok() || reply.value().first != 200 ||
            reply.value().second.find("\"scores\"") == std::string::npos) {
          failures.fetch_add(1);
          continue;
        }
        // The served score for node c must be the in-process value.
        char formatted[64];
        std::snprintf(formatted, sizeof(formatted), "%.17g",
                      expected.score[c]);
        if (reply.value().second.find(formatted) == std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  Result<std::pair<int, std::string>> health =
      HttpRoundTrip(port, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().first, 200);
  EXPECT_NE(health.value().second.find("\"DegNorm\""), std::string::npos);

  Result<std::pair<int, std::string>> metrics =
      HttpRoundTrip(port, "GET", "/metrics", "");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().first, 200);
  EXPECT_NE(metrics.value().second.find("serve.requests.total"),
            std::string::npos);

  Result<std::pair<int, std::string>> missing =
      HttpRoundTrip(port, "GET", "/nope", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().first, 404);

  Result<std::pair<int, std::string>> bad_body =
      HttpRoundTrip(port, "POST", "/score", "{\"nodes\":[99999]}");
  ASSERT_TRUE(bad_body.ok());
  EXPECT_NE(bad_body.value().first, 200);

  server.Stop();
}

}  // namespace
}  // namespace vgod
