// Tests for the serving subsystem: model bundles (round-trip and loud
// failure on corrupt/mismatched files), the micro-batching scoring
// engine, registry thread-safety, and a concurrent-client smoke test
// against a live HTTP scoring server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "datasets/registry.h"
#include "datasets/synthetic.h"
#include "detectors/bundle.h"
#include "detectors/registry.h"
#include "detectors/serialize.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"
#include "serve/engine.h"
#include "serve/http.h"
#include "serve/server.h"

namespace vgod {
namespace {

using namespace ::vgod::detectors;  // NOLINT: test-local convenience.

AttributedGraph TestGraph(int n = 80, uint64_t seed = 1) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 4;
  spec.avg_degree = 4.0;
  spec.attribute_dim = 12;
  spec.topic_dims_per_community = 3;
  Rng rng(seed);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

VbmConfig TinyVbm() {
  VbmConfig config;
  config.hidden_dim = 8;
  config.epochs = 3;
  return config;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Model bundles.

TEST(BundleTest, VbmRoundTripIsBitIdentical) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  const DetectorOutput expected = trained.Score(graph);

  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle.value().detector, "VBM");

  const std::string path = TempPath("vbm_roundtrip.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());
  Result<ModelBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Result<std::unique_ptr<OutlierDetector>> restored =
      MakeDetectorFromBundle(loaded.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const DetectorOutput got = restored.value()->Score(graph);
  ASSERT_EQ(got.score.size(), expected.score.size());
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(got.score[i], expected.score[i]) << "node " << i;
  }
}

TEST(BundleTest, VgodRoundTripPreservesComponents) {
  AttributedGraph graph = TestGraph();
  VgodConfig config;
  config.vbm = TinyVbm();
  config.arm.hidden_dim = 8;
  config.arm.epochs = 3;
  Vgod trained(config);
  ASSERT_TRUE(trained.Fit(graph).ok());
  const DetectorOutput expected = trained.Score(graph);

  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const std::string path = TempPath("vgod_roundtrip.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());
  Result<ModelBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Result<std::unique_ptr<OutlierDetector>> restored =
      MakeDetectorFromBundle(loaded.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const DetectorOutput got = restored.value()->Score(graph);
  ASSERT_TRUE(got.has_components());
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(got.score[i], expected.score[i]);
    EXPECT_EQ(got.structural_score[i], expected.structural_score[i]);
    EXPECT_EQ(got.contextual_score[i], expected.contextual_score[i]);
  }
}

TEST(BundleTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.vgodb");
  std::ofstream(path) << "definitely not a bundle";
  Result<ModelBundle> loaded = LoadBundle(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(BundleTest, LoadRejectsCorruptPayload) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("corrupt.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());

  // Flip one byte in the middle of the parameter payload; the checksum
  // must catch it.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x5a;
  std::ofstream(path, std::ios::binary) << bytes;

  Result<ModelBundle> loaded = LoadBundle(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(BundleTest, LoadRejectsTruncatedFile) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("truncated.vgodb");
  ASSERT_TRUE(SaveBundle(bundle.value(), path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() * 2 / 3);

  Result<ModelBundle> loaded = LoadBundle(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(BundleTest, RestoreRejectsShapeMismatch) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());

  // Swap in a parameter tensor with the wrong shape.
  ModelBundle tampered = bundle.value();
  ASSERT_FALSE(tampered.params.empty());
  tampered.params[0] = Tensor::Zeros(3, 3);
  Result<std::unique_ptr<OutlierDetector>> restored =
      MakeDetectorFromBundle(tampered);
  EXPECT_FALSE(restored.ok());
}

TEST(BundleTest, RestoreRejectsWrongDetectorName) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  Result<ModelBundle> bundle = trained.ExportBundle();
  ASSERT_TRUE(bundle.ok());

  Vgod other;
  EXPECT_FALSE(other.RestoreFromBundle(bundle.value()).ok());
}

TEST(BundleTest, LoadFallsBackToLegacyParameterList) {
  AttributedGraph graph = TestGraph();
  Vbm trained(TinyVbm());
  ASSERT_TRUE(trained.Fit(graph).ok());
  const std::string path = TempPath("legacy.params");
  ASSERT_TRUE(trained.Save(path).ok());

  // The legacy text format loads as an anonymous bundle: parameters only.
  Result<ModelBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().detector.empty());
  EXPECT_FALSE(loaded.value().params.empty());

  // Anonymous bundles cannot name their detector, so the registry path
  // must refuse them rather than guess.
  EXPECT_FALSE(MakeDetectorFromBundle(loaded.value()).ok());

  // The caller that does know the architecture can still restore.
  Vbm manual(TinyVbm());
  ASSERT_TRUE(manual.Load(path).ok());
  const DetectorOutput expected = trained.Score(graph);
  const DetectorOutput got = manual.Score(graph);
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(got.score[i], expected.score[i]);
  }
}

// ---------------------------------------------------------------------------
// Scoring engine.

using serve::ScoringEngine;

std::unique_ptr<ScoringEngine> MakeDegNormEngine(const AttributedGraph& graph,
                                                 serve::EngineConfig config) {
  auto detector = std::make_unique<DegNorm>();
  VGOD_CHECK(detector->Fit(graph).ok());
  return std::make_unique<ScoringEngine>(std::move(detector), graph, config);
}

TEST(ScoringEngineTest, ServedScoresMatchInProcessScore) {
  AttributedGraph graph = TestGraph();
  DegNorm reference;
  ASSERT_TRUE(reference.Fit(graph).ok());
  const DetectorOutput expected = reference.Score(graph);

  serve::EngineConfig config;
  config.num_threads = 2;
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());
  Result<serve::ScoreResult> result = engine->ScoreNodes({0, 5, 17});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().score[0], expected.score[0]);
  EXPECT_EQ(result.value().score[1], expected.score[5]);
  EXPECT_EQ(result.value().score[2], expected.score[17]);
  engine->Shutdown();
}

TEST(ScoringEngineTest, BatcherFlushesOnSize) {
  AttributedGraph graph = TestGraph();
  serve::EngineConfig config;
  config.num_threads = 1;
  config.max_batch = 3;
  config.max_delay_us = 10'000'000;  // Effectively never; size must flush.
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<serve::ScoreResult>>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine->SubmitNodes({i}));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

  EXPECT_EQ(engine->score_calls(), 1);  // One Score() answered all three.
  EXPECT_LT(elapsed_s, 5.0);  // Flushed on size, not the 10s deadline.
  engine->Shutdown();
}

TEST(ScoringEngineTest, BatcherFlushesOnDeadline) {
  AttributedGraph graph = TestGraph();
  serve::EngineConfig config;
  config.num_threads = 1;
  config.max_batch = 100;  // Unreachable; the deadline must flush.
  config.max_delay_us = 30'000;
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());

  std::vector<std::future<Result<serve::ScoreResult>>> futures;
  futures.push_back(engine->SubmitNodes({1}));
  futures.push_back(engine->SubmitNodes({2}));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(engine->score_calls(), 1);
  engine->Shutdown();
}

TEST(ScoringEngineTest, RejectsInvalidNodeIdsWithoutPoisoningBatch) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  ASSERT_TRUE(engine->Start().ok());

  Result<serve::ScoreResult> bad = engine->ScoreNodes({-1});
  EXPECT_FALSE(bad.ok());
  Result<serve::ScoreResult> too_big =
      engine->ScoreNodes({graph.num_nodes()});
  EXPECT_FALSE(too_big.ok());
  Result<serve::ScoreResult> good = engine->ScoreNodes({0});
  EXPECT_TRUE(good.ok());
  engine->Shutdown();
}

TEST(ScoringEngineTest, SubgraphScoringMatchesAndValidatesSchema) {
  AttributedGraph graph = TestGraph();
  DegNorm reference;
  ASSERT_TRUE(reference.Fit(graph).ok());
  const DetectorOutput expected = reference.Score(graph);

  auto engine = MakeDegNormEngine(graph, {});
  ASSERT_TRUE(engine->Start().ok());

  Result<serve::ScoreResult> result = engine->ScoreGraph(graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().score.size(), expected.score.size());
  for (size_t i = 0; i < expected.score.size(); ++i) {
    EXPECT_EQ(result.value().score[i], expected.score[i]);
  }

  // A subgraph with a different attribute schema must be rejected, not
  // crash a kernel assertion.
  AttributedGraph mismatched = TestGraph(40, 9);
  mismatched.SetAttributes(Tensor::Zeros(40, 5));
  Result<serve::ScoreResult> rejected =
      engine->ScoreGraph(std::move(mismatched));
  EXPECT_FALSE(rejected.ok());
  engine->Shutdown();
}

// A detector whose Score() blocks until the test releases it — used to
// deterministically fill the bounded queue.
class BlockingDetector : public OutlierDetector {
 public:
  std::string name() const override { return "Blocking"; }
  Status Fit(const AttributedGraph&) override { return Status::Ok(); }

  DetectorOutput Score(const AttributedGraph& graph) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return tokens_ > 0; });
      --tokens_;
    }
    DetectorOutput out;
    out.score.assign(graph.num_nodes(), 1.0);
    return out;
  }

  void WaitForScoreEntry(int n) const {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this, n] { return entered_ >= n; });
  }

  void Release(int n) const {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tokens_ += n;
    }
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable release_cv_;
  mutable int entered_ = 0;
  mutable int tokens_ = 0;
};

TEST(ScoringEngineTest, FullQueueShedsLoad) {
  AttributedGraph graph = TestGraph();
  auto blocking = std::make_unique<BlockingDetector>();
  const BlockingDetector* control = blocking.get();
  serve::EngineConfig config;
  config.num_threads = 1;
  config.max_batch = 1;
  config.max_queue = 1;
  ScoringEngine engine(std::move(blocking), graph, config);
  ASSERT_TRUE(engine.Start().ok());

  // First request occupies the worker (blocked inside Score)...
  std::future<Result<serve::ScoreResult>> first = engine.SubmitNodes({0});
  control->WaitForScoreEntry(1);
  // ...second fills the queue; third must be shed with an error, fast.
  std::future<Result<serve::ScoreResult>> second = engine.SubmitNodes({1});
  Result<serve::ScoreResult> shed = engine.SubmitNodes({2}).get();
  EXPECT_FALSE(shed.ok());

  control->Release(2);
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  engine.Shutdown();
}

TEST(ScoringEngineTest, ShutdownDrainsInFlightWork) {
  AttributedGraph graph = TestGraph();
  serve::EngineConfig config;
  config.num_threads = 2;
  config.max_batch = 4;
  auto engine = MakeDegNormEngine(graph, config);
  ASSERT_TRUE(engine->Start().ok());

  std::vector<std::future<Result<serve::ScoreResult>>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine->SubmitNodes({i}));
  engine->Shutdown();
  // Every accepted request resolved (successfully or with a drain error);
  // none may be abandoned.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
  Result<serve::ScoreResult> after = engine->ScoreNodes({0});
  EXPECT_FALSE(after.ok());
}

// ---------------------------------------------------------------------------
// Registry thread-safety.

TEST(RegistryThreadSafetyTest, ConcurrentRegisterAndMake) {
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &failures]() {
      const std::string det_name = "test-det-" + std::to_string(t);
      RegisterDetector(det_name, [](const DetectorOptions&) {
        return Result<std::unique_ptr<OutlierDetector>>(
            std::make_unique<DegNorm>());
      });
      datasets::RegisterDataset(
          "test-ds-" + std::to_string(t),
          [](double, uint64_t) {
            return Result<datasets::Dataset>(
                Status::FailedPrecondition("test dataset"));
          });
      for (int i = 0; i < 20; ++i) {
        Result<std::unique_ptr<OutlierDetector>> made =
            MakeDetector(i % 2 == 0 ? "DegNorm" : det_name);
        if (!made.ok()) failures.fetch_add(1);
        if (RegisteredDetectorNames().empty()) failures.fetch_add(1);
        if (datasets::RegisteredDatasetNames().empty()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);

  const std::vector<std::string> names = RegisteredDetectorNames();
  for (int t = 0; t < kThreads; ++t) {
    const std::string expected = "test-det-" + std::to_string(t);
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
  }
}

// ---------------------------------------------------------------------------
// Live HTTP server smoke test with concurrent clients.

// Minimal loopback HTTP/1.1 client for the smoke test.
Result<std::pair<int, std::string>> HttpRoundTrip(int port,
                                                  const std::string& method,
                                                  const std::string& target,
                                                  const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect() failed");
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\nConnection: close\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return Status::IoError("malformed response");
  const int status = std::atoi(response.c_str() + space + 1);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("missing header terminator");
  }
  return std::make_pair(status, response.substr(header_end + 4));
}

// Sends `request` verbatim (no header fix-ups) and returns the status
// code — for exercising the transport with malformed headers that
// HttpRoundTrip could never produce.
Result<int> RawHttpStatus(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect() failed");
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t space = response.find(' ');
  if (space == std::string::npos) return Status::IoError("malformed response");
  return std::atoi(response.c_str() + space + 1);
}

std::string RawRequestWithContentLength(const std::string& length_token) {
  return "POST /score HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n"
         "Content-Length: " +
         length_token + "\r\n\r\n";
}

TEST(ScoringServerTest, MalformedContentLengthGetsCleanHttpErrors) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Trailing garbage after the digits: the pre-fix parser (atoi-style)
  // accepted "123abc" as 123; now the full token must validate.
  Result<int> trailing =
      RawHttpStatus(port, RawRequestWithContentLength("123abc"));
  ASSERT_TRUE(trailing.ok()) << trailing.status().ToString();
  EXPECT_EQ(trailing.value(), 400);

  Result<int> negative =
      RawHttpStatus(port, RawRequestWithContentLength("-5"));
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative.value(), 400);

  Result<int> empty = RawHttpStatus(port, RawRequestWithContentLength(""));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value(), 400);

  // Well-formed but absurd lengths are "too large", not "bad request" —
  // including values that overflow the parser's integer type.
  Result<int> oversized =
      RawHttpStatus(port, RawRequestWithContentLength("99999999999"));
  ASSERT_TRUE(oversized.ok());
  EXPECT_EQ(oversized.value(), 413);

  Result<int> overflow = RawHttpStatus(
      port, RawRequestWithContentLength("99999999999999999999999999"));
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(overflow.value(), 413);

  // None of the rejections may take the server down.
  Result<std::pair<int, std::string>> health =
      HttpRoundTrip(port, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().first, 200);

  server.Stop();
}

TEST(ScoringServerTest, ConcurrentClientsAgainstLiveServer) {
  AttributedGraph graph = TestGraph();
  auto engine = MakeDegNormEngine(graph, {});
  DegNorm reference;
  ASSERT_TRUE(reference.Fit(graph).ok());
  const DetectorOutput expected = reference.Score(graph);

  serve::ScoringServer server(std::move(engine), /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  ASSERT_GT(port, 0);

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      const std::string body =
          "{\"nodes\":[" + std::to_string(c) + "," +
          std::to_string(c + 10) + "]}";
      for (int i = 0; i < 5; ++i) {
        Result<std::pair<int, std::string>> reply =
            HttpRoundTrip(port, "POST", "/score", body);
        if (!reply.ok() || reply.value().first != 200 ||
            reply.value().second.find("\"scores\"") == std::string::npos) {
          failures.fetch_add(1);
          continue;
        }
        // The served score for node c must be the in-process value.
        char formatted[64];
        std::snprintf(formatted, sizeof(formatted), "%.17g",
                      expected.score[c]);
        if (reply.value().second.find(formatted) == std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  Result<std::pair<int, std::string>> health =
      HttpRoundTrip(port, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().first, 200);
  EXPECT_NE(health.value().second.find("\"DegNorm\""), std::string::npos);

  Result<std::pair<int, std::string>> metrics =
      HttpRoundTrip(port, "GET", "/metrics", "");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().first, 200);
  EXPECT_NE(metrics.value().second.find("serve.requests.total"),
            std::string::npos);

  Result<std::pair<int, std::string>> missing =
      HttpRoundTrip(port, "GET", "/nope", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().first, 404);

  Result<std::pair<int, std::string>> bad_body =
      HttpRoundTrip(port, "POST", "/score", "{\"nodes\":[99999]}");
  ASSERT_TRUE(bad_body.ok());
  EXPECT_NE(bad_body.value().first, 200);

  server.Stop();
}

}  // namespace
}  // namespace vgod
