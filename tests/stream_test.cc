// Tests for the streaming graph subsystem (docs/STREAMING.md): delta
// store overlay semantics and all-or-nothing validation, snapshot/compact
// copy-on-write behavior, the incremental OnlineScorer's equivalence with
// the from-scratch NeighborVarianceScore kernel under randomized event
// sequences (with interleaved compactions), watchlist ordering, the
// engine's ingest path, and a concurrent ingest+score smoke test (run
// under TSan via the `threads` ctest label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "detectors/vbm.h"
#include "graph/graph.h"
#include "graph/graph_ops.h"
#include "serve/engine.h"
#include "stream/delta_graph.h"
#include "stream/events.h"
#include "stream/online_scorer.h"
#include "tensor/tensor.h"

namespace vgod {
namespace {

using stream::DeltaGraphStore;
using stream::EventBatch;
using stream::GraphEvent;
using stream::OnlineScorer;
using stream::OnlineScorerConfig;

AttributedGraph StreamTestGraph(int n = 60, uint64_t seed = 11,
                                int attribute_dim = 6) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 3;
  spec.avg_degree = 4.0;
  spec.attribute_dim = attribute_dim;
  spec.topic_dims_per_community = 2;
  Rng rng(seed);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

std::vector<float> RandomRow(int dim, Rng* rng) {
  std::vector<float> row(dim);
  for (float& x : row) x = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return row;
}

/// Picks a valid random event against the store's CURRENT state: an edge
/// toggle (add when absent, remove when present), an attribute update, or
/// a node append.
GraphEvent RandomEvent(const DeltaGraphStore& store, Rng* rng) {
  const int n = store.num_nodes();
  const int dim = store.attribute_dim();
  const double kind = rng->Uniform();
  if (kind < 0.55) {
    int u = static_cast<int>(rng->Next() % n);
    int v = static_cast<int>(rng->Next() % n);
    if (u == v) v = (v + 1) % n;
    return store.HasEdge(u, v) ? GraphEvent::RemoveEdge(u, v)
                               : GraphEvent::AddEdge(u, v);
  }
  if (kind < 0.85) {
    return GraphEvent::UpdateAttributes(static_cast<int>(rng->Next() % n),
                                        RandomRow(dim, rng));
  }
  return GraphEvent::AddNode(RandomRow(dim, rng));
}

/// From-scratch reference: the batch NeighborVarianceScore kernel over the
/// store's current snapshot, mirroring the detector's self-loop technique
/// via WithSelfLoops() when `self_loops` (the incremental scorer folds the
/// self term analytically instead).
std::vector<float> FromScratchScores(DeltaGraphStore* store,
                                     bool self_loops) {
  std::shared_ptr<const AttributedGraph> snapshot = store->Snapshot();
  if (self_loops) {
    const AttributedGraph with_self = snapshot->WithSelfLoops();
    Tensor scores =
        graph_ops::NeighborVarianceScore(with_self, with_self.attributes());
    return std::vector<float>(scores.data(),
                              scores.data() + with_self.num_nodes());
  }
  Tensor scores =
      graph_ops::NeighborVarianceScore(*snapshot, snapshot->attributes());
  return std::vector<float>(scores.data(),
                            scores.data() + snapshot->num_nodes());
}

void ExpectScoresNear(const std::vector<float>& got,
                      const std::vector<float>& want, double tolerance) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tolerance) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Delta store.

TEST(DeltaGraphTest, OverlayMatchesBaseThenMutations) {
  AttributedGraph base = StreamTestGraph();
  const int n = base.num_nodes();
  DeltaGraphStore store(StreamTestGraph());
  ASSERT_EQ(store.num_nodes(), n);
  for (int u = 0; u < n; ++u) {
    EXPECT_EQ(store.Degree(u), base.Degree(u));
    const std::vector<int32_t> row = store.CurrentNeighbors(u);
    ASSERT_EQ(static_cast<int>(row.size()), base.Degree(u));
  }

  // Find one absent and one present edge pair.
  int absent_u = 0, absent_v = 2;
  while (base.HasEdge(absent_u, absent_v)) absent_v = (absent_v + 1) % n;
  ASSERT_GT(base.Degree(1), 0);
  const int present_v = base.Neighbors(1)[0];

  const GraphEvent add = GraphEvent::AddEdge(absent_u, absent_v);
  const GraphEvent remove = GraphEvent::RemoveEdge(1, present_v);
  ASSERT_TRUE(store.ValidateBatch({add, remove}).ok());
  store.ApplyOne(add);
  store.ApplyOne(remove);
  EXPECT_TRUE(store.HasEdge(absent_u, absent_v));
  EXPECT_TRUE(store.HasEdge(absent_v, absent_u));  // Undirected: both ways.
  EXPECT_FALSE(store.HasEdge(1, present_v));
  EXPECT_EQ(store.Degree(absent_u), base.Degree(absent_u) + 1);
  EXPECT_EQ(store.Degree(1), base.Degree(1) - 1);

  // Snapshot materializes the overlay; neighbor rows stay sorted.
  std::shared_ptr<const AttributedGraph> snapshot = store.Snapshot();
  EXPECT_TRUE(snapshot->HasEdge(absent_u, absent_v));
  EXPECT_FALSE(snapshot->HasEdge(1, present_v));
  for (int u = 0; u < n; ++u) {
    std::span<const int32_t> row = snapshot->Neighbors(u);
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
  // Cached until the next mutation: same shared snapshot object.
  EXPECT_EQ(snapshot.get(), store.Snapshot().get());

  // Toggling back cancels the overlay instead of stacking entries.
  const GraphEvent undo_add = GraphEvent::RemoveEdge(absent_u, absent_v);
  const GraphEvent undo_remove = GraphEvent::AddEdge(1, present_v);
  ASSERT_TRUE(store.ValidateBatch({undo_add, undo_remove}).ok());
  store.ApplyOne(undo_add);
  store.ApplyOne(undo_remove);
  EXPECT_EQ(store.overlay_edges(), 0);
}

TEST(DeltaGraphTest, ValidateBatchIsAllOrNothing) {
  DeltaGraphStore store(StreamTestGraph());
  const int n = store.num_nodes();
  const int dim = store.attribute_dim();
  const int64_t ops_before = store.delta_ops();

  int absent_v = 2;
  while (store.HasEdge(0, absent_v)) absent_v = (absent_v + 1) % n;

  // Each batch starts with a valid event; the bad one must reject the
  // whole batch without applying anything.
  const std::vector<std::vector<GraphEvent>> hostile = {
      {GraphEvent::AddEdge(0, absent_v), GraphEvent::AddEdge(0, n + 7)},
      {GraphEvent::AddEdge(0, absent_v), GraphEvent::AddEdge(3, 3)},
      {GraphEvent::AddEdge(0, absent_v), GraphEvent::AddEdge(0, absent_v)},
      {GraphEvent::AddEdge(0, absent_v), GraphEvent::RemoveEdge(0, absent_v),
       GraphEvent::RemoveEdge(0, absent_v)},
      {GraphEvent::UpdateAttributes(0, std::vector<float>(dim + 1, 0.f))},
      {GraphEvent::AddNode(std::vector<float>(dim - 1, 0.f))},
      {GraphEvent::UpdateAttributes(-1, std::vector<float>(dim, 0.f))},
  };
  for (size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_FALSE(store.ValidateBatch(hostile[i]).ok()) << "batch " << i;
  }
  EXPECT_EQ(store.delta_ops(), ops_before);
  EXPECT_EQ(store.num_nodes(), n);

  // Intra-batch tracking: add then remove the same edge is valid, as is
  // adding a node and immediately updating its attributes.
  EXPECT_TRUE(store
                  .ValidateBatch({GraphEvent::AddEdge(0, absent_v),
                                  GraphEvent::RemoveEdge(0, absent_v)})
                  .ok());
  EXPECT_TRUE(store
                  .ValidateBatch(
                      {GraphEvent::AddNode(std::vector<float>(dim, 0.f)),
                       GraphEvent::UpdateAttributes(
                           n, std::vector<float>(dim, 1.f))})
                  .ok());
}

TEST(DeltaGraphTest, CompactionPreservesGraphAndClearsOverlay) {
  DeltaGraphStore store(StreamTestGraph());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const GraphEvent event = RandomEvent(store, &rng);
    ASSERT_TRUE(store.ValidateBatch({event}).ok());
    store.ApplyOne(event);
  }
  std::shared_ptr<const AttributedGraph> before = store.Snapshot();
  store.Compact();
  EXPECT_EQ(store.delta_ops(), 0);
  EXPECT_EQ(store.overlay_edges(), 0);
  EXPECT_EQ(store.compactions(), 1);

  std::shared_ptr<const AttributedGraph> after = store.Snapshot();
  ASSERT_EQ(after->num_nodes(), before->num_nodes());
  EXPECT_EQ(after->num_directed_edges(), before->num_directed_edges());
  for (int u = 0; u < after->num_nodes(); ++u) {
    std::span<const int32_t> b = before->Neighbors(u);
    std::span<const int32_t> a = after->Neighbors(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << u;
  }
}

// ---------------------------------------------------------------------------
// Incremental scorer equivalence.

void RunEquivalence(bool include_self, uint64_t seed) {
  DeltaGraphStore store(StreamTestGraph(60, seed));
  OnlineScorerConfig config;  // Identity embedding.
  config.include_self = include_self;
  Result<OnlineScorer> scorer = OnlineScorer::Create(&store, config);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  ExpectScoresNear(scorer.value().Scores(),
                   FromScratchScores(&store, include_self), 1e-5);

  Rng rng(seed * 31 + 7);
  for (int i = 1; i <= 300; ++i) {
    const GraphEvent event = RandomEvent(store, &rng);
    ASSERT_TRUE(store.ValidateBatch({event}).ok());
    store.ApplyOne(event);
    Result<int> touched = scorer.value().ApplyOne(event);
    ASSERT_TRUE(touched.ok()) << touched.status().ToString();
    EXPECT_GE(touched.value(), 1);
    // Interleave compactions mid-sequence: aggregates must survive the
    // base swap because they depend only on the logical graph.
    if (i % 97 == 0) store.Compact();
    if (i % 25 == 0) {
      ExpectScoresNear(scorer.value().Scores(),
                       FromScratchScores(&store, include_self), 1e-5);
    }
  }
  ExpectScoresNear(scorer.value().Scores(),
                   FromScratchScores(&store, include_self), 1e-5);
}

TEST(OnlineScorerTest, RandomizedEquivalence) { RunEquivalence(false, 3); }

TEST(OnlineScorerTest, RandomizedEquivalenceWithSelfTerm) {
  RunEquivalence(true, 4);
}

TEST(OnlineScorerTest, VbmEmbeddingEquivalence) {
  AttributedGraph graph = StreamTestGraph(60, 9, 12);
  detectors::VbmConfig vbm_config;
  vbm_config.hidden_dim = 8;
  vbm_config.epochs = 3;
  detectors::Vbm vbm(vbm_config);
  ASSERT_TRUE(vbm.Fit(graph).ok());

  DeltaGraphStore store(std::move(graph));
  OnlineScorerConfig config;
  config.embed = [&vbm](const Tensor& rows) { return vbm.EmbedRows(rows); };
  Result<OnlineScorer> scorer = OnlineScorer::Create(&store, config);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();

  auto reference = [&]() {
    std::shared_ptr<const AttributedGraph> snapshot = store.Snapshot();
    Result<Tensor> h = vbm.EmbedRows(snapshot->attributes());
    VGOD_CHECK(h.ok()) << h.status().ToString();
    Tensor scores = graph_ops::NeighborVarianceScore(*snapshot, h.value());
    return std::vector<float>(scores.data(),
                              scores.data() + snapshot->num_nodes());
  };
  ExpectScoresNear(scorer.value().Scores(), reference(), 1e-5);

  Rng rng(17);
  for (int i = 1; i <= 150; ++i) {
    const GraphEvent event = RandomEvent(store, &rng);
    ASSERT_TRUE(store.ValidateBatch({event}).ok());
    store.ApplyOne(event);
    ASSERT_TRUE(scorer.value().ApplyOne(event).ok());
    if (i % 50 == 0) store.Compact();
    if (i % 30 == 0) {
      ExpectScoresNear(scorer.value().Scores(), reference(), 1e-5);
    }
  }
  ExpectScoresNear(scorer.value().Scores(), reference(), 1e-5);
}

TEST(OnlineScorerTest, EdgeEventTouchesEndpointsOnly) {
  DeltaGraphStore store(StreamTestGraph());
  Result<OnlineScorer> scorer =
      OnlineScorer::Create(&store, OnlineScorerConfig{});
  ASSERT_TRUE(scorer.ok());
  int v = 2;
  while (store.HasEdge(0, v)) v = (v + 1) % store.num_nodes();
  const GraphEvent add = GraphEvent::AddEdge(0, v);
  ASSERT_TRUE(store.ValidateBatch({add}).ok());
  store.ApplyOne(add);
  Result<int> touched = scorer.value().ApplyOne(add);
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(touched.value(), 2);  // Exactly the two endpoints.

  // An attribute update touches the node plus its current neighbors.
  const int deg = store.Degree(v);
  const GraphEvent update = GraphEvent::UpdateAttributes(
      v, std::vector<float>(store.attribute_dim(), 0.25f));
  ASSERT_TRUE(store.ValidateBatch({update}).ok());
  store.ApplyOne(update);
  touched = scorer.value().ApplyOne(update);
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(touched.value(), deg + 1);
}

TEST(OnlineScorerTest, WatchlistOrderingMatchesScores) {
  DeltaGraphStore store(StreamTestGraph(50, 21));
  Result<OnlineScorer> scorer =
      OnlineScorer::Create(&store, OnlineScorerConfig{});
  ASSERT_TRUE(scorer.ok());
  Rng rng(23);
  for (int i = 0; i < 120; ++i) {
    const GraphEvent event = RandomEvent(store, &rng);
    ASSERT_TRUE(store.ValidateBatch({event}).ok());
    store.ApplyOne(event);
    ASSERT_TRUE(scorer.value().ApplyOne(event).ok());
  }

  const std::vector<std::pair<int, double>> top = scorer.value().TopK(10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  // The watchlist head is the global argmax of the full score vector.
  const std::vector<float> all = scorer.value().Scores();
  const int argmax = static_cast<int>(
      std::max_element(all.begin(), all.end()) - all.begin());
  EXPECT_DOUBLE_EQ(top[0].second, scorer.value().Score(top[0].first));
  EXPECT_FLOAT_EQ(all[argmax], static_cast<float>(top[0].second));

  // k beyond n clamps; k <= 0 is empty.
  EXPECT_EQ(scorer.value().TopK(10000).size(),
            static_cast<size_t>(store.num_nodes()));
  EXPECT_TRUE(scorer.value().TopK(0).empty());
}

// ---------------------------------------------------------------------------
// Engine integration.

std::unique_ptr<serve::ScoringEngine> StreamingEngine(
    const AttributedGraph& graph, serve::StreamingOptions stream_options = {},
    int num_threads = 2) {
  detectors::VbmConfig config;
  config.hidden_dim = 8;
  config.epochs = 3;
  auto detector = std::make_unique<detectors::Vbm>(config);
  VGOD_CHECK(detector->Fit(graph).ok());
  serve::EngineConfig engine_config;
  engine_config.num_threads = num_threads;
  engine_config.max_batch = 4;
  engine_config.max_delay_us = 200;
  auto engine = std::make_unique<serve::ScoringEngine>(
      std::move(detector), graph, engine_config);
  VGOD_CHECK(engine->EnableStreaming(stream_options).ok());
  VGOD_CHECK(engine->Start().ok());
  return engine;
}

TEST(EngineStreamingTest, IngestAppliesAndPublishesSnapshots) {
  AttributedGraph graph = StreamTestGraph(50, 31, 12);
  const int n = graph.num_nodes();
  std::unique_ptr<serve::ScoringEngine> engine = StreamingEngine(graph);

  std::string reason;
  EXPECT_TRUE(engine->Ready(&reason)) << reason;

  int absent_v = 2;
  while (graph.HasEdge(0, absent_v)) absent_v = (absent_v + 1) % n;
  EventBatch batch;
  batch.events.push_back(GraphEvent::AddEdge(0, absent_v));
  batch.events.push_back(GraphEvent::AddNode(
      std::vector<float>(graph.attribute_dim(), 0.5f)));
  Result<serve::IngestResult> applied = engine->Ingest(batch, 99);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().request_id, 99u);
  EXPECT_EQ(applied.value().events_applied, 2);
  EXPECT_GE(applied.value().touched_nodes, 3);
  EXPECT_EQ(applied.value().num_nodes, n + 1);

  // The published snapshot reflects the mutation; the appended node is
  // immediately scoreable through the batch path.
  EXPECT_TRUE(engine->CurrentGraph()->HasEdge(0, absent_v));
  EXPECT_EQ(engine->CurrentGraph()->num_nodes(), n + 1);
  Result<serve::ScoreResult> scored = engine->ScoreNodes({0, n});
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  EXPECT_EQ(scored.value().score.size(), 2u);

  // A hostile batch is rejected whole and nothing changes.
  EventBatch hostile;
  hostile.events.push_back(GraphEvent::AddEdge(0, n + 50));
  EXPECT_FALSE(engine->Ingest(hostile).ok());
  EXPECT_EQ(engine->CurrentGraph()->num_nodes(), n + 1);

  // Forced compaction via batch.compact.
  EventBatch compact_batch;
  compact_batch.compact = true;
  Result<serve::IngestResult> compacted = engine->Ingest(compact_batch);
  ASSERT_TRUE(compacted.ok());
  EXPECT_TRUE(compacted.value().compacted);
  EXPECT_EQ(compacted.value().delta_ops, 0);

  Result<std::vector<serve::WatchlistEntry>> watchlist = engine->Watchlist(5);
  ASSERT_TRUE(watchlist.ok());
  ASSERT_EQ(watchlist.value().size(), 5u);
  for (size_t i = 1; i < watchlist.value().size(); ++i) {
    EXPECT_GE(watchlist.value()[i - 1].score, watchlist.value()[i].score);
  }

  engine->Shutdown();
  EXPECT_FALSE(engine->Ready(&reason));
  EXPECT_FALSE(engine->Ingest(batch).ok());
}

TEST(EngineStreamingTest, IngestRequiresStreamingMode) {
  AttributedGraph graph = StreamTestGraph(40, 41, 12);
  detectors::VbmConfig config;
  config.hidden_dim = 8;
  config.epochs = 2;
  auto detector = std::make_unique<detectors::Vbm>(config);
  ASSERT_TRUE(detector->Fit(graph).ok());
  serve::ScoringEngine engine(std::move(detector), graph,
                              serve::EngineConfig{});
  ASSERT_TRUE(engine.Start().ok());
  EventBatch batch;
  batch.events.push_back(GraphEvent::AddNode(
      std::vector<float>(graph.attribute_dim(), 0.f)));
  Status rejected = engine.Ingest(batch).status();
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(engine.Watchlist().ok());
  engine.Shutdown();
}

TEST(EngineStreamingTest, ConcurrentIngestAndScore) {
  AttributedGraph graph = StreamTestGraph(80, 51, 12);
  const int n = graph.num_nodes();
  serve::StreamingOptions stream_options;
  stream_options.compact_every = 64;  // Force compactions under load.
  std::unique_ptr<serve::ScoringEngine> engine =
      StreamingEngine(graph, stream_options, 2);

  constexpr int kIngestThreads = 2;
  constexpr int kScoreThreads = 3;
  constexpr int kBatches = 25;
  std::atomic<int> ingest_failures{0};
  std::vector<std::thread> pool;
  // Each ingest thread owns a disjoint node range, so concurrent batches
  // can never invalidate each other (same recipe as bench/stream_loadgen).
  const int chunk = n / kIngestThreads;
  for (int t = 0; t < kIngestThreads; ++t) {
    pool.emplace_back([&, t]() {
      Rng rng(100 + t);
      const int lo = t * chunk;
      const int span = t == kIngestThreads - 1 ? n - lo : chunk;
      std::vector<std::pair<int, int>> toggled;
      for (int b = 0; b < kBatches; ++b) {
        EventBatch batch;
        for (int e = 0; e < 8; ++e) {
          if (rng.Uniform() < 0.7 && span >= 2) {
            int u = lo + static_cast<int>(rng.Next() % span);
            int v = lo + static_cast<int>(rng.Next() % span);
            if (u == v) v = lo + (v - lo + 1) % span;
            const std::pair<int, int> key = {std::min(u, v), std::max(u, v)};
            const auto it =
                std::find(toggled.begin(), toggled.end(), key);
            const bool present =
                it != toggled.end() ? false : graph.HasEdge(u, v);
            if (it != toggled.end()) {
              // Already toggled once this run: skip instead of tracking
              // parity — validity is what matters here, not coverage.
              continue;
            }
            toggled.push_back(key);
            batch.events.push_back(present ? GraphEvent::RemoveEdge(u, v)
                                           : GraphEvent::AddEdge(u, v));
          } else {
            const int node = lo + static_cast<int>(rng.Next() % span);
            std::vector<float> row(graph.attribute_dim());
            for (float& x : row)
              x = static_cast<float>(rng.Uniform(-1.0, 1.0));
            batch.events.push_back(GraphEvent::UpdateAttributes(node, row));
          }
        }
        if (batch.events.empty()) continue;
        if (!engine->Ingest(batch).ok()) ingest_failures.fetch_add(1);
      }
    });
  }
  std::atomic<bool> done{false};
  for (int c = 0; c < kScoreThreads; ++c) {
    pool.emplace_back([&, c]() {
      int r = 0;
      while (r < 30 || !done.load()) {
        Result<serve::ScoreResult> scored =
            engine->ScoreNodes({(c * 13 + r) % n, (c * 13 + r + 1) % n});
        EXPECT_TRUE(scored.ok()) << scored.status().ToString();
        Result<std::vector<serve::WatchlistEntry>> top = engine->Watchlist(3);
        EXPECT_TRUE(top.ok());
        std::string reason;
        engine->Ready(&reason);
        ++r;
      }
    });
  }
  for (int t = 0; t < kIngestThreads; ++t) pool[t].join();
  done.store(true);
  for (size_t t = kIngestThreads; t < pool.size(); ++t) pool[t].join();
  EXPECT_EQ(ingest_failures.load(), 0);
  engine->Shutdown();
}

}  // namespace
}  // namespace vgod
