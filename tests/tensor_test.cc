#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace vgod {
namespace {

namespace k = ::vgod::kernels;

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.rows(), 0);
  EXPECT_EQ(t.cols(), 0);
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros(2, 3);
  Tensor o = Tensor::Ones(2, 3);
  Tensor f = Tensor::Full(2, 3, 2.5f);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(z.At(i, j), 0.0f);
      EXPECT_EQ(o.At(i, j), 1.0f);
      EXPECT_EQ(f.At(i, j), 2.5f);
    }
  }
}

TEST(TensorTest, FromVectorRowMajor) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 2, 3);
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 2), 3.0f);
  EXPECT_EQ(t.At(1, 0), 4.0f);
  EXPECT_EQ(t.At(1, 2), 6.0f);
}

TEST(TensorTest, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::Zeros(2, 2);
  Tensor shared = a;
  Tensor cloned = a.Clone();
  a.SetAt(0, 0, 9.0f);
  EXPECT_EQ(shared.At(0, 0), 9.0f);
  EXPECT_EQ(cloned.At(0, 0), 0.0f);
}

TEST(TensorTest, ReshapedSharesStorage) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 2, 3);
  Tensor b = a.Reshaped(3, 2);
  EXPECT_EQ(b.At(1, 0), 3.0f);
  a.SetAt(0, 0, 42.0f);
  EXPECT_EQ(b.At(0, 0), 42.0f);
}

TEST(TensorDeathTest, ReshapedRejectsSizeMismatch) {
  Tensor a = Tensor::Zeros(2, 3);
  EXPECT_DEATH(a.Reshaped(4, 2), "check failed");
}

TEST(TensorDeathTest, AtBoundsChecked) {
  Tensor a = Tensor::Zeros(2, 3);
  EXPECT_DEATH(a.At(2, 0), "check failed");
  EXPECT_DEATH(a.At(0, 3), "check failed");
}

TEST(TensorTest, ScalarValue) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(3.25f).ScalarValue(), 3.25f);
}

TEST(TensorTest, CopyFromMatchingShape) {
  Tensor a = Tensor::Zeros(2, 2);
  Tensor b = Tensor::Full(2, 2, 7.0f);
  a.CopyFrom(b);
  EXPECT_EQ(a.At(1, 1), 7.0f);
}

TEST(TensorTest, RandomUniformWithinBounds) {
  Rng rng(3);
  Tensor t = Tensor::RandomUniform(20, 20, -2.0f, 2.0f, &rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.data()[i], -2.0f);
    EXPECT_LT(t.data()[i], 2.0f);
  }
}

TEST(TensorTest, ToStringShowsShape) {
  EXPECT_NE(Tensor::Zeros(3, 4).ToString().find("[3 x 4]"), std::string::npos);
}

// --- Kernels ---

TEST(KernelsTest, MatMulMatchesHandComputed) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, 2, 2);
  Tensor c = k::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 50.0f);
}

TEST(KernelsTest, MatMulVariantsAgree) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal(7, 4, 0, 1, &rng);
  Tensor b = Tensor::RandomNormal(4, 6, 0, 1, &rng);
  Tensor reference = k::MatMul(a, b);
  // A * B == A * (B^T)^T via MatMulNT and == ((A^T)^T) * B via MatMulTN.
  EXPECT_LT(k::MaxAbsDiff(reference, k::MatMulNT(a, k::Transpose(b))), 1e-4f);
  EXPECT_LT(k::MaxAbsDiff(reference, k::MatMulTN(k::Transpose(a), b)), 1e-4f);
}

TEST(KernelsTest, TransposeInvolution) {
  Rng rng(7);
  Tensor a = Tensor::RandomNormal(5, 9, 0, 1, &rng);
  EXPECT_EQ(k::MaxAbsDiff(a, k::Transpose(k::Transpose(a))), 0.0f);
}

TEST(KernelsTest, ElementwiseOps) {
  Tensor a = Tensor::FromVector({1, -2, 3, -4}, 2, 2);
  Tensor b = Tensor::FromVector({2, 2, 2, 2}, 2, 2);
  EXPECT_FLOAT_EQ(k::Add(a, b).At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(k::Sub(a, b).At(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(k::Mul(a, b).At(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(k::Scale(a, -1.0f).At(1, 1), 4.0f);
  EXPECT_FLOAT_EQ(k::Abs(a).At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(k::Square(a).At(1, 1), 16.0f);
}

TEST(KernelsTest, ActivationValues) {
  Tensor x = Tensor::FromVector({-1.0f, 0.0f, 2.0f}, 1, 3);
  Tensor relu = k::Relu(x);
  EXPECT_FLOAT_EQ(relu.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(relu.At(0, 2), 2.0f);
  Tensor leaky = k::LeakyRelu(x, 0.1f);
  EXPECT_FLOAT_EQ(leaky.At(0, 0), -0.1f);
  EXPECT_FLOAT_EQ(leaky.At(0, 2), 2.0f);
  Tensor sig = k::Sigmoid(x);
  EXPECT_NEAR(sig.At(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(sig.At(0, 0), 1.0f / (1.0f + std::exp(1.0f)), 1e-6f);
  Tensor tanh = k::Tanh(x);
  EXPECT_NEAR(tanh.At(0, 2), std::tanh(2.0f), 1e-6f);
}

TEST(KernelsTest, SigmoidStableAtExtremes) {
  Tensor x = Tensor::FromVector({-100.0f, 100.0f}, 1, 2);
  Tensor sig = k::Sigmoid(x);
  EXPECT_NEAR(sig.At(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(sig.At(0, 1), 1.0f, 1e-6f);
}

TEST(KernelsTest, AddRowVectorBroadcasts) {
  Tensor a = Tensor::Zeros(3, 2);
  Tensor row = Tensor::FromVector({1, 2}, 1, 2);
  Tensor out = k::AddRowVector(a, row);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(out.At(i, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.At(i, 1), 2.0f);
  }
}

TEST(KernelsTest, InPlaceOps) {
  Tensor a = Tensor::Ones(2, 2);
  k::AddInPlace(&a, Tensor::Ones(2, 2));
  EXPECT_FLOAT_EQ(a.At(0, 0), 2.0f);
  k::AxpyInPlace(&a, 3.0f, Tensor::Ones(2, 2));
  EXPECT_FLOAT_EQ(a.At(1, 1), 5.0f);
  k::ScaleInPlace(&a, 0.5f);
  EXPECT_FLOAT_EQ(a.At(0, 1), 2.5f);
}

TEST(KernelsTest, Reductions) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, 2, 3);
  EXPECT_FLOAT_EQ(k::SumAll(a).ScalarValue(), 21.0f);
  Tensor row_sums = k::RowSums(a);
  EXPECT_FLOAT_EQ(row_sums.At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(row_sums.At(1, 0), 15.0f);
  Tensor col_sums = k::ColSums(a);
  EXPECT_FLOAT_EQ(col_sums.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(col_sums.At(0, 2), 9.0f);
  EXPECT_DOUBLE_EQ(k::MeanValue(a), 3.5);
  EXPECT_NEAR(k::StdValue(a), std::sqrt(35.0 / 12.0), 1e-6);
}

TEST(KernelsTest, RowNormsAndNormalize) {
  Tensor a = Tensor::FromVector({3, 4, 0, 0}, 2, 2);
  Tensor norms = k::RowNorms(a);
  EXPECT_FLOAT_EQ(norms.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(norms.At(1, 0), 0.0f);
  Tensor normalized = k::RowL2Normalize(a, 1e-12f);
  EXPECT_FLOAT_EQ(normalized.At(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(normalized.At(0, 1), 0.8f);
  // Zero rows stay zero rather than producing NaN.
  EXPECT_FLOAT_EQ(normalized.At(1, 0), 0.0f);
}

TEST(KernelsTest, RowSquaredDistance) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::FromVector({0, 0, 3, 2}, 2, 2);
  Tensor d = k::RowSquaredDistance(a, b);
  EXPECT_FLOAT_EQ(d.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(d.At(1, 0), 4.0f);
}

TEST(KernelsTest, MatMulSkipsZerosCorrectly) {
  // The sparse-input fast path must not change results.
  Rng rng(11);
  Tensor a = Tensor::RandomNormal(6, 8, 0, 1, &rng);
  for (int64_t i = 0; i < a.size(); i += 3) a.data()[i] = 0.0f;
  Tensor b = Tensor::RandomNormal(8, 5, 0, 1, &rng);
  Tensor fast = k::MatMul(a, b);
  // Reference via transpose identity.
  Tensor reference = k::Transpose(k::MatMulTN(b, k::Transpose(a)));
  EXPECT_LT(k::MaxAbsDiff(fast, reference), 1e-4f);
}

}  // namespace
}  // namespace vgod
