#!/usr/bin/env python3
"""Bench regression gate: fresh serve_loadgen numbers vs committed bands.

Runs `serve_loadgen` at a reduced, deterministic scale with
VGOD_BENCH_MANIFEST set, then compares every metric the manifest records
(`t{threads}b{batch}.p50_ms`, `.p99_ms`, `.throughput_rps`,
`.queue_wait_p99_ms`, `.score_p99_ms`) against the tolerance bands
committed in bench/baselines.json. The bands are deliberately wide —
they catch order-of-magnitude regressions (a serialization stall, a lost
batching path, a histogram that stopped filling), not machine-to-machine
jitter. Structural invariants are checked unconditionally:

  * p50 <= p99 for end-to-end and per-stage latency,
  * batch amortization (requests / score calls) within [1, max_batch],
  * every baseline metric present in the fresh manifest.

With `--kernels build/bench/micro_kernels` the gate also runs the
`--sweep` kernel grid and compares each kernel's single-thread GFLOP/s
against the per-kernel bands in baselines.json's "kernels" section; the
sweep is run without VGOD_BENCH_MANIFEST so the binary's always-emitted
default manifest (BENCH_kernels.json in the working directory) is what
gets validated.

With `--stream-loadgen build/bench/stream_loadgen` the gate also runs the
streaming bench (mixed ingest+score traffic plus the 1x/4x scaling probe)
and compares its manifest against the "stream" bands: ingest throughput,
touched-nodes-per-event, score tail latency, and the per-event-cost
scaling ratio that pins the incremental scorer to O(deg) rather than
O(n) work per event. Structural stream invariants (quantile ordering,
exactly-two-endpoints touched by edge toggles at both scales) are
checked unconditionally when the report is present.

Run directly (`python3 tools/check_bench.py --loadgen build/bench/serve_loadgen
--baselines bench/baselines.json`) or via ctest (registered as check_bench
with the `bench` label).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ERRORS = []


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run_loadgen(loadgen, baselines, workdir):
    manifest_path = workdir / "manifest.json"
    report_path = workdir / "report.json"
    env = dict(os.environ)
    env.update(baselines.get("env", {}))
    env["VGOD_BENCH_MANIFEST"] = str(manifest_path)
    cmd = [str(loadgen), "--clients=4", "--requests=8", "--http",
           f"--json={report_path}"]
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=480)
    if proc.returncode != 0:
        fail(f"serve_loadgen exited {proc.returncode}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
        return None, None
    if not check(manifest_path.exists(), "loadgen wrote no manifest"):
        return None, None
    if not check(report_path.exists(), "loadgen wrote no JSON report"):
        return None, None
    return (json.loads(manifest_path.read_text()),
            json.loads(report_path.read_text()))


def manifest_metrics(manifest):
    """Flattens manifest results to {metric: value}."""
    out = {}
    for result in manifest.get("results", []):
        out[result["metric"]] = result["value"]
    return out


def kernel_metrics(manifest):
    """Flattens sweep results to {"op.tN.metric": value}.

    The kernel sweep records the same metric name ("gflops") for every
    op, so the loadgen-style metric-only flattening would collide; key by
    the full (dataset=op, detector=tN, metric) triple instead.
    """
    out = {}
    for result in manifest.get("results", []):
        key = f'{result["dataset"]}.{result["detector"]}.{result["metric"]}'
        out[key] = result["value"]
    return out


def run_kernel_sweep(kernels, workdir):
    """Runs `micro_kernels --sweep` and returns its default manifest."""
    env = dict(os.environ)
    env.pop("VGOD_BENCH_MANIFEST", None)  # exercise the default emit
    cmd = [str(kernels), "--sweep"]
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          cwd=workdir, timeout=480)
    if proc.returncode != 0:
        fail(f"micro_kernels --sweep exited {proc.returncode}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
        return None
    manifest_path = workdir / "BENCH_kernels.json"
    if not check(manifest_path.exists(),
                 "micro_kernels --sweep did not emit BENCH_kernels.json "
                 "(the default manifest must be written even without "
                 "VGOD_BENCH_MANIFEST)"):
        return None
    return json.loads(manifest_path.read_text())


def run_stream_loadgen(stream_loadgen, baselines, workdir):
    """Runs stream_loadgen at a reduced scale and returns (manifest, report)."""
    manifest_path = workdir / "stream_manifest.json"
    report_path = workdir / "stream_report.json"
    env = dict(os.environ)
    env.update(baselines.get("env", {}))
    env["VGOD_BENCH_MANIFEST"] = str(manifest_path)
    cmd = [str(stream_loadgen), "--batches=8", "--batch-size=16",
           "--requests=30", "--scale-nodes=1000", "--scale-events=2000",
           "--drift", f"--json={report_path}"]
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=480)
    if proc.returncode != 0:
        fail(f"stream_loadgen exited {proc.returncode}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
        return None, None
    if not check(manifest_path.exists(), "stream_loadgen wrote no manifest"):
        return None, None
    if not check(report_path.exists(),
                 "stream_loadgen wrote no JSON report"):
        return None, None
    return (json.loads(manifest_path.read_text()),
            json.loads(report_path.read_text()))


def check_band_map(metrics, bands, section):
    """Generic tolerance-band gate: every banded metric must be present and
    inside [min, max]. Shared by the kernel/stream/matrix sections here and
    by tools/check_matrix.py."""
    for metric, band in sorted(bands.items()):
        if not check(metric in metrics,
                     f"{section}: missing baseline metric {metric}"):
            continue
        value = metrics[metric]
        lo, hi = band["min"], band["max"]
        check(lo <= value <= hi,
              f"{section}: {metric} = {value} outside committed band "
              f"[{lo}, {hi}]")


def matrix_metrics(leaderboard):
    """Flattens a matrix_runner leaderboard to band-checkable metrics:
    {"dataset.regime.detector.auc_mean": value, ...} plus ".seeds_ok"."""
    out = {}
    for row in leaderboard.get("summary", []):
        key = f'{row["dataset"]}.{row["regime"]}.{row["detector"]}'
        out[f"{key}.auc_mean"] = row["auc_mean"]
        out[f"{key}.ap_mean"] = row["ap_mean"]
        out[f"{key}.seeds_ok"] = row["seeds_ok"]
    return out


def check_stream_bands(metrics, baselines):
    bands = baselines.get("stream", {})
    if not check(bands, "baselines.json declares no stream bands"):
        return
    check_band_map(metrics, bands, "stream")


def check_stream_invariants(report):
    mixed = report.get("mixed", {})
    check(mixed.get("events", 0) > 0, "stream report recorded no events")
    check(mixed.get("events_per_sec", 0) > 0, "stream ingest throughput is 0")
    check(0 < mixed.get("score_p50_ms", -1) <= mixed.get("score_p99_ms", -1),
          "stream score quantiles inverted or non-positive")
    scaling = report.get("scaling", {})
    points = scaling.get("points", [])
    if not check(len(points) == 2, "stream scaling probe needs 2 points"):
        return
    small, large = points
    check(large["nodes"] == 4 * small["nodes"],
          f"scaling points are not 1x/4x: {small['nodes']}/{large['nodes']}")
    # Edge toggles touch exactly their two endpoints, independent of n.
    for point in points:
        check(abs(point.get("touched_per_event", 0) - 2.0) < 1e-9,
              f"edge toggle touched {point.get('touched_per_event')} nodes "
              f"at n={point['nodes']}, want exactly 2")
    # Drift probe (--drift): the detection signal must separate — the
    # shifted window strictly beyond the stable one, on real samples.
    drift = report.get("drift", {})
    if check(drift, "stream report has no drift section (--drift phase)"):
        check(drift.get("scores_recorded", 0) > 0,
              "drift probe recorded no scores")
        check(drift.get("shifted_psi", 0) > drift.get("stable_psi", 0),
              f"drift probe PSI did not separate: stable "
              f"{drift.get('stable_psi')} vs shifted "
              f"{drift.get('shifted_psi')}")


def check_kernel_bands(metrics, baselines):
    bands = baselines.get("kernels", {})
    if not check(bands, "baselines.json declares no kernel bands"):
        return
    check_band_map(metrics, bands, "kernels")


def check_matrix_bands(leaderboard, baselines):
    """Gates a matrix_runner leaderboard artifact against the "matrix" band
    section ({"dataset.regime.detector.auc_mean": {min,max}, ...}). The
    richer rank-based gate (plus schema validation and the perturbation
    self-test) lives in tools/check_matrix.py; this mode lets an existing
    leaderboard artifact ride the same check_bench band machinery."""
    bands = baselines.get("matrix", {})
    if not check(bands, "baselines.json declares no matrix bands"):
        return
    check_band_map(matrix_metrics(leaderboard), bands, "matrix")


def check_transport_bands(metrics, baselines):
    """Gates the reactor-transport manifest metrics from the loadgen --http
    phase: the high-fanout thread-boundedness proof (256 parked keep-alive
    connections must not add server threads) and the connection-churn
    leak check (open connections and thread count return to baseline)."""
    bands = baselines.get("transport", {})
    if not check(bands, "baselines.json declares no transport bands"):
        return
    check_band_map(metrics, bands, "transport")


def check_bands(metrics, baselines):
    bands = baselines.get("metrics", {})
    if not check(bands, "baselines.json declares no metric bands"):
        return
    for metric, band in sorted(bands.items()):
        if not check(metric in metrics,
                     f"manifest is missing baseline metric {metric}"):
            continue
        value = metrics[metric]
        lo, hi = band["min"], band["max"]
        check(lo <= value <= hi,
              f"{metric} = {value} outside committed band [{lo}, {hi}]")
    extra = sorted(set(metrics) - set(bands))
    if extra:
        print(f"note: {len(extra)} manifest metric(s) without bands: "
              f"{', '.join(extra)}")


def check_invariants(report):
    configs = report.get("configs", [])
    if not check(configs, "loadgen report has no configs"):
        return
    for config in configs:
        tag = f"t{config.get('threads')}b{config.get('max_batch')}"
        requests = config.get("requests", 0)
        score_calls = config.get("score_calls", 0)
        if check(0 < score_calls <= requests,
                 f"{tag}: score_calls {score_calls} outside (0, {requests}]"):
            amortization = requests / score_calls
            check(1.0 <= amortization <= config.get("max_batch", 1) + 1e-9,
                  f"{tag}: batch amortization {amortization:.2f} outside "
                  f"[1, {config.get('max_batch')}]")
        check(0 < config.get("p50_ms", -1) <= config.get("p99_ms", -1),
              f"{tag}: latency quantiles inverted or non-positive")
        for stage, quantiles in (config.get("stages") or {}).items():
            check(0 <= quantiles.get("p50_ms", -1)
                  <= quantiles.get("p99_ms", -1),
                  f"{tag}: stage {stage} quantiles inverted")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loadgen",
                        help="path to serve_loadgen (optional when only "
                             "--matrix gating is wanted)")
    parser.add_argument("--baselines", required=True,
                        help="path to bench/baselines.json")
    parser.add_argument("--kernels",
                        help="path to micro_kernels; also runs the --sweep "
                             "kernel grid against the 'kernels' bands")
    parser.add_argument("--stream-loadgen",
                        help="path to stream_loadgen; also gates ingest "
                             "throughput, touched-nodes-per-event, and the "
                             "O(deg) scaling ratio against the 'stream' "
                             "bands")
    parser.add_argument("--matrix",
                        help="path to a matrix_runner leaderboard JSON; "
                             "gates its summary against the 'matrix' bands "
                             "in --baselines")
    args = parser.parse_args()

    baselines = json.loads(Path(args.baselines).read_text())
    if args.matrix:
        check_matrix_bands(json.loads(Path(args.matrix).read_text()),
                           baselines)
    if not args.loadgen and not args.matrix:
        parser.error("nothing to do: pass --loadgen and/or --matrix")
    with tempfile.TemporaryDirectory(prefix="vgod_check_bench_") as tmp:
        manifest, report = (run_loadgen(Path(args.loadgen), baselines,
                                        Path(tmp))
                            if args.loadgen else (None, None))
        kernel_manifest = (run_kernel_sweep(Path(args.kernels), Path(tmp))
                           if args.kernels else None)
        stream_manifest, stream_report = (
            run_stream_loadgen(Path(args.stream_loadgen), baselines,
                               Path(tmp))
            if args.stream_loadgen else (None, None))
    if manifest is not None:
        check_bands(manifest_metrics(manifest), baselines)
        check_transport_bands(manifest_metrics(manifest), baselines)
    if report is not None:
        check_invariants(report)
    if kernel_manifest is not None:
        check_kernel_bands(kernel_metrics(kernel_manifest), baselines)
    if stream_manifest is not None:
        check_stream_bands(manifest_metrics(stream_manifest), baselines)
    if stream_report is not None:
        check_stream_invariants(stream_report)

    if ERRORS:
        print(f"\ncheck_bench: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_bench: fresh bench numbers are inside the committed bands")
    return 0


if __name__ == "__main__":
    sys.exit(main())
