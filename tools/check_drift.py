#!/usr/bin/env python3
"""End-to-end validator for model-quality observability
(docs/OBSERVABILITY.md "Model-quality observability").

Drives a live `vgod_serve --streaming` with tight drift/monitor knobs:

  1. `vgod_cli generate` + `vgod_cli detect --save-bundle` produce a graph
     and a fingerprinted bundle; a local webhook receiver (which 500s the
     first delivery to exercise retry) and a raw-socket SSE subscriber to
     GET /events come up alongside the server.
  2. /debug/drift must report status "ok" with the restored baseline
     quantiles; /debug/alerts must list the configured rules (inactive),
     including metric_available=false for a rule on a missing metric.
  3. Stable phase: scoring every node keeps drift.score.psi under the
     alert threshold — the live window reproduces the training scores.
  4. Drift phase: update_attributes ingest events blast a third of the
     nodes; rescoring must push drift.score.psi over 0.25, the
     "score-psi-high" rule must fire, and the firing transition must
     arrive over BOTH the webhook (despite the injected 500) and SSE.
     The ingest must also change the watchlist and publish a
     "watchlist" SSE event, and event_mix/degree drift must be live.
  5. Quiet phase: with scoring stopped the window drains below
     min-count, PSI reports 0, and the rule resolves — transition again
     observed on webhook and SSE.
  6. A bundle exported WITHOUT a fingerprint (legacy
     `vgod_cli export-bundle` path) must serve with /debug/drift status
     "baseline_missing", drift.baseline.present 0, and working /score.
  7. Hostile --alert-rules files (bad JSON, unknown comparator, negative
     duration, duplicate names, missing file) must exit nonzero with a
     diagnostic, never a crash loop or a listening server.
  8. SIGTERM with the SSE connection still open must drain and exit 0.

Run directly (`python3 tools/check_drift.py --cli build/tools/vgod_cli
--serve build/tools/vgod_serve`) or via ctest (registered as check_drift).
"""

import argparse
import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

ERRORS = []

BANNER_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run(cmd, env_extra=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    print("+", " ".join(str(c) for c in cmd))
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, env=env,
        timeout=480)
    if proc.returncode != 0:
        fail(f"command failed ({proc.returncode}): {' '.join(map(str, cmd))}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
    return proc


def http(port, method, path, body=None, timeout=30):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read().decode())
        except Exception:
            payload = None
        return error.code, payload


def http_text(port, path, timeout=30):
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, ""


def start_server(serve_bin, flags):
    proc = subprocess.Popen(
        [str(serve_bin)] + flags,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = BANNER_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        fail(f"vgod_serve never printed its port; output: {''.join(lines)}")
    return proc, port


def stop_server(proc, name):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{name} did not exit within 60s of SIGTERM")
        return
    check(proc.returncode == 0, f"{name} exited {proc.returncode}")


class WebhookReceiver:
    """Records every POSTed alert payload; the first delivery gets a 500
    so a correct notifier must retry it (the payload then appears twice,
    once rejected and once accepted)."""

    def __init__(self):
        self.lock = threading.Lock()
        self.deliveries = []  # (status_sent, parsed_json)
        receiver = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                body = self.rfile.read(length).decode()
                try:
                    payload = json.loads(body)
                except Exception:
                    payload = body
                with receiver.lock:
                    status = 500 if not receiver.deliveries else 200
                    receiver.deliveries.append((status, payload))
                self.send_response(status)
                self.send_header("Content-Length", "2")
                self.end_headers()
                self.wfile.write(b"{}")

            def log_message(self, *_):
                pass

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self.thread.start()

    def snapshot(self):
        with self.lock:
            return list(self.deliveries)

    def stop(self):
        self.server.shutdown()
        self.server.server_close()


class SseClient:
    """Raw-socket subscriber to GET /events: collects (event, data)
    frames and keepalive comments from the unframed SSE byte stream."""

    def __init__(self, port):
        self.lock = threading.Lock()
        self.events = []  # (event_type, parsed_data)
        self.keepalives = 0
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.sock.sendall(
            b"GET /events HTTP/1.1\r\nHost: 127.0.0.1\r\n"
            b"Accept: text/event-stream\r\n\r\n")
        self.buffer = b""
        self.headers = self._read_headers()
        self.thread = threading.Thread(target=self._read_loop, daemon=True)
        self.thread.start()

    def _read_headers(self):
        deadline = time.monotonic() + 20
        while b"\r\n\r\n" not in self.buffer:
            if time.monotonic() > deadline:
                fail("SSE response headers never arrived")
                return ""
            chunk = self.sock.recv(4096)
            if not chunk:
                fail("SSE connection closed before headers")
                return ""
            self.buffer += chunk
        headers, _, self.buffer = self.buffer.partition(b"\r\n\r\n")
        return headers.decode(errors="replace")

    def _read_loop(self):
        self.sock.settimeout(1.0)
        while True:
            try:
                chunk = self.sock.recv(4096)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                return
            self.buffer += chunk
            self._drain_frames()

    def _drain_frames(self):
        while b"\n\n" in self.buffer:
            frame, _, self.buffer = self.buffer.partition(b"\n\n")
            event_type, data = None, None
            for line in frame.decode(errors="replace").splitlines():
                if line.startswith(":"):
                    with self.lock:
                        self.keepalives += 1
                elif line.startswith("event: "):
                    event_type = line[len("event: "):]
                elif line.startswith("data: "):
                    data = line[len("data: "):]
            if event_type is not None:
                try:
                    parsed = json.loads(data) if data else None
                except Exception:
                    parsed = data
                with self.lock:
                    self.events.append((event_type, parsed))

    def snapshot(self):
        with self.lock:
            return list(self.events), self.keepalives

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.2)
    fail(f"timed out after {timeout}s waiting for {what}")
    return None


def score_all(port, num_nodes, chunk=256):
    """Scores every node; the served scores feed the drift window."""
    for start in range(0, num_nodes, chunk):
        nodes = list(range(start, min(start + chunk, num_nodes)))
        status, reply = http(port, "POST", "/score",
                             json.dumps({"nodes": nodes}))
        if not check(status == 200 and reply and
                     len(reply.get("scores", [])) == len(nodes),
                     f"scoring nodes [{start}, ...) failed: {status}"):
            return False
    return True


def drift_gauges(port):
    status, metrics = http(port, "GET", "/metrics")
    if status != 200 or not isinstance(metrics, dict):
        return {}
    return metrics.get("gauges", {})


def alert_state(port, name):
    status, state = http(port, "GET", "/debug/alerts")
    if status != 200 or not isinstance(state, dict):
        return None
    for rule in state.get("rules", []):
        if rule.get("name") == name:
            return rule
    return None


def write_rules(workdir):
    rules = workdir / "alert_rules.json"
    rules.write_text(json.dumps({"rules": [
        {"name": "score-psi-high", "metric": "drift.score.psi",
         "op": ">", "threshold": 0.25, "for_seconds": 0},
        {"name": "ks-never", "metric": "drift.score.ks",
         "op": ">", "threshold": 2.0, "for_seconds": 0},
        {"name": "missing-metric", "metric": "no.such.metric",
         "op": ">", "threshold": 0.0, "for_seconds": 0},
    ]}))
    return rules


def check_initial_state(port, num_nodes):
    status, drift = http(port, "GET", "/debug/drift")
    if not check(status == 200 and isinstance(drift, dict),
                 f"/debug/drift returned {status}"):
        return
    check(drift.get("status") == "ok",
          f"fingerprinted bundle reports drift status {drift.get('status')}")
    check(drift.get("baseline_present") is True, "baseline_present not true")
    baseline = drift.get("baseline", {})
    check(baseline.get("num_nodes") == num_nodes,
          f"baseline num_nodes {baseline.get('num_nodes')} != {num_nodes}")
    scores = baseline.get("scores", {})
    check(isinstance(scores, dict) and "p50" in scores and
          scores.get("count", 0) == num_nodes,
          f"baseline score summary malformed: {scores}")

    status, alerts = http(port, "GET", "/debug/alerts")
    if not check(status == 200 and isinstance(alerts, dict),
                 f"/debug/alerts returned {status}"):
        return
    names = [r.get("name") for r in alerts.get("rules", [])]
    check(names == ["score-psi-high", "ks-never", "missing-metric"],
          f"/debug/alerts rule set is {names}")
    for rule in alerts.get("rules", []):
        check(rule.get("state") == "inactive",
              f"rule {rule.get('name')} started {rule.get('state')}")
    wait_for(lambda: (alert_state(port, "missing-metric") or {})
             .get("metric_available") is False or None,
             10, "missing-metric rule to sample its absent metric")
    missing = alert_state(port, "missing-metric")
    check(missing and missing.get("metric_available") is False,
          f"missing-metric rule claims its metric exists: {missing}")


def check_stable_phase(port, num_nodes):
    """The live window over freshly served scores must match the training
    fingerprint: PSI stays far below the 0.25 alert threshold."""
    def settled_psi():
        if not score_all(port, num_nodes):
            return "abort"
        gauges = drift_gauges(port)
        if gauges.get("drift.window.count", 0) >= 32:
            return gauges
        return None
    gauges = wait_for(settled_psi, 30, "drift window to fill")
    if not isinstance(gauges, dict):
        return
    check(gauges.get("drift.baseline.present") == 1,
          "drift.baseline.present gauge is not 1")
    psi = gauges.get("drift.score.psi")
    check(psi is not None and psi < 0.1,
          f"stable-phase PSI is {psi}, want < 0.1 (scores should match "
          f"the training fingerprint)")
    rule = alert_state(port, "score-psi-high")
    check(rule and rule.get("state") == "inactive",
          f"score-psi-high not inactive in stable phase: {rule}")


def inject_shift(port, num_nodes, dim):
    """Rewrites every node's attributes to a per-node random +/-20 vector.
    VBM scores are neighbor variance of L2-normalized embeddings, so
    scattering the embeddings inflates variance everywhere: the score
    distribution shifts (PSI crosses) and the top-k recomposes (the
    watchlist SSE event). Identical constant vectors would do the
    opposite — collapse neighbor variance toward zero."""
    events = []
    for node in range(num_nodes):
        rng = random.Random(node)
        events.append({"op": "update_attributes", "node": node,
                       "attributes": [rng.choice((-20.0, 20.0))
                                      for _ in range(dim)]})
    # Chunk to stay under --max-events per batch.
    for start in range(0, len(events), 64):
        status, reply = http(
            port, "POST", "/ingest",
            json.dumps({"events": events[start:start + 64]}))
        if not check(status == 200,
                     f"shift ingest returned {status}: {reply}"):
            return


def check_drift_phase(port, num_nodes, dim, webhook, sse):
    def psi_crossed():
        if not score_all(port, num_nodes):
            return "abort"
        gauges = drift_gauges(port)
        psi = gauges.get("drift.score.psi", 0.0)
        return gauges if psi > 0.25 else None
    gauges = wait_for(psi_crossed, 60, "drift.score.psi to cross 0.25")
    if not isinstance(gauges, dict):
        return
    check(gauges.get("drift.score.ks", 0) > 0.05,
          f"KS did not move with PSI: {gauges.get('drift.score.ks')}")

    # fired_total rather than a live "firing" state: once scoring stops
    # the window drains in window_buckets * rotate_seconds and the rule
    # may already have resolved by the time this poll lands.
    wait_for(
        lambda: (lambda r: r if r and r.get("fired_total", 0) >= 1
                 else None)(alert_state(port, "score-psi-high")),
        30, "score-psi-high to fire")

    # Structural drift channels are live: ingest traffic gives the event
    # mix a window-vs-lifetime distance, and the degree histogram of the
    # served graph is being compared against the fingerprint's. The event
    # mix only covers events since the last window rotation, so keep a
    # trickle of ingest traffic flowing while polling for it.
    def event_mix_live():
        http(port, "POST", "/ingest", json.dumps({"events": [
            {"op": "update_attributes", "node": 0,
             "attributes": [20.0] * dim}]}))
        status, drift = http(port, "GET", "/debug/drift")
        if status == 200 and drift.get("event_mix_distance", -1) >= 0:
            return drift
        return None
    drift = wait_for(event_mix_live, 20,
                     "event_mix_distance to become available")
    if drift:
        check(drift.get("degree_distance", -1) >= 0,
              f"degree_distance unavailable on a streaming server: "
              f"{drift.get('degree_distance')}")

    # The firing transition reaches the webhook — with the first delivery
    # 500ed, retry must re-deliver the same payload.
    deliveries = wait_for(
        lambda: (lambda d: d if any(
            status == 200 and isinstance(p, dict) and
            p.get("type") == "firing" and p.get("rule") == "score-psi-high"
            for status, p in d) else None)(webhook.snapshot()),
        30, "webhook to accept the firing transition")
    if deliveries:
        first_status, first_payload = deliveries[0]
        check(first_status == 500, "retry probe: first delivery was not 500ed")
        check(any(status == 200 and payload == first_payload
                  for status, payload in deliveries[1:]),
              f"500ed payload was never retried to success: {deliveries}")

    # ... and the SSE stream: hello on connect, the alert transition, and
    # a watchlist event from the ingest-driven composition change.
    events = wait_for(
        lambda: (lambda ev: ev if any(
            t == "alert" and isinstance(d, dict) and d.get("type") == "firing"
            for t, d in ev) else None)(sse.snapshot()[0]),
        30, "SSE alert firing event")
    if events:
        check(events[0][0] == "hello",
              f"first SSE event is {events[0][0]}, want hello")
        firing = next(d for t, d in events
                      if t == "alert" and d.get("type") == "firing")
        check(firing.get("rule") == "score-psi-high" and
              firing.get("value", 0) > 0.25,
              f"SSE firing payload malformed: {firing}")
    wait_for(
        lambda: any(t == "watchlist" for t, _ in sse.snapshot()[0]) or None,
        30, "SSE watchlist event after the attribute blast")
    for event_type, data in sse.snapshot()[0]:
        if event_type == "watchlist":
            check(isinstance(data, dict) and
                  len(data.get("watchlist", [])) > 0,
                  f"watchlist SSE payload malformed: {data}")
            break

    # alerts.* metric surface moved, and the prometheus exposition carries
    # the drift/alert families.
    gauges = drift_gauges(port)
    check(gauges.get("alerts.rules") == 3,
          f"alerts.rules gauge is {gauges.get('alerts.rules')}")
    check(gauges.get("alerts.transitions.firing.total", 0) >= 1,
          "alerts.transitions.firing.total did not move")
    status, text = http_text(port, "/metrics?format=prometheus")
    check(status == 200 and "drift_score_psi" in text and
          "alerts_firing" in text,
          "prometheus exposition lacks drift_/alerts_ families")


def check_resolve_phase(port, webhook, sse):
    """Scoring stopped: the window drains below min-count, PSI reports 0,
    and the firing rule resolves."""
    rule = wait_for(
        lambda: (lambda r: r if r and r.get("state") == "inactive" and
                 r.get("resolved_total", 0) >= 1 else None)(
            alert_state(port, "score-psi-high")),
        30, "score-psi-high to resolve after the window drains")
    if rule:
        check(rule.get("resolved_total", 0) >= 1,
              f"resolved_total did not move: {rule}")
    wait_for(
        lambda: any(
            status == 200 and isinstance(p, dict) and
            p.get("type") == "resolved" and p.get("rule") == "score-psi-high"
            for status, p in webhook.snapshot()) or None,
        30, "webhook to receive the resolved transition")
    wait_for(
        lambda: any(
            t == "alert" and isinstance(d, dict) and
            d.get("type") == "resolved" for t, d in sse.snapshot()[0]) or None,
        30, "SSE resolved event")
    _, keepalives = sse.snapshot()
    check(keepalives >= 1, "SSE stream never carried a keepalive comment")

    # ks-never must have stayed out of the whole episode.
    never = alert_state(port, "ks-never")
    check(never and never.get("state") == "inactive" and
          never.get("fired_total", 0) == 0,
          f"ks-never rule moved: {never}")


def check_monitored_server(cli, serve_bin, workdir):
    graph = workdir / "drift.graph"
    bundle = workdir / "drift_model.vgodb"
    run([cli, "generate", "--dataset=cora", "--scale=0.25", "--seed=7",
         "--inject=contextual", f"--output={graph}"])
    run([cli, "detect", f"--graph={graph}", "--detector=VBM",
         "--epoch-scale=0.05", "--seed=7", f"--save-bundle={bundle}",
         "--output=" + str(workdir / "drift_scores.tsv")])
    if not check(bundle.exists(), "detect wrote no bundle"):
        return

    rules = write_rules(workdir)
    webhook = WebhookReceiver()
    proc, port = start_server(serve_bin, [
        f"--bundle={bundle}", f"--graph={graph}", "--port=0", "--threads=2",
        "--streaming", "--watchlist-k=5", "--max-events=64",
        f"--alert-rules={rules}",
        f"--webhook-url=http://127.0.0.1:{webhook.port}/hook",
        "--monitor-interval=0.2", "--drift-rotate-seconds=0.5",
        "--drift-window-buckets=3", "--drift-min-count=32"])
    if port is None:
        webhook.stop()
        return
    sse = None
    try:
        status, health = http(port, "GET", "/healthz")
        if not check(status == 200 and isinstance(health, dict),
                     f"/healthz returned {status}"):
            return
        num_nodes = health.get("nodes", 0)
        dim = health.get("attribute_dim", 0)
        if not check(num_nodes > 0 and dim > 0,
                     f"/healthz lacks nodes/attribute_dim: {health}"):
            return

        sse = SseClient(port)
        check("200" in sse.headers.splitlines()[0] and
              "text/event-stream" in sse.headers,
              f"GET /events response malformed: {sse.headers!r}")

        check_initial_state(port, num_nodes)
        check_stable_phase(port, num_nodes)
        inject_shift(port, num_nodes, dim)
        check_drift_phase(port, num_nodes, dim, webhook, sse)
        check_resolve_phase(port, webhook, sse)
    finally:
        # SIGTERM with the SSE subscription still open: the reactor must
        # close the stream and drain to exit 0.
        stop_server(proc, "vgod_serve (monitored)")
        if sse is not None:
            sse.close()
        webhook.stop()


def check_unfingerprinted_bundle(cli, serve_bin, workdir):
    """The legacy export path produces bundles without fingerprints; they
    must serve with drift reporting baseline_missing, never crash."""
    graph = workdir / "old.graph"
    prefix = workdir / "old_model"
    bundle = workdir / "old_model.vgodb"
    run([cli, "generate", "--dataset=cora", "--scale=0.15", "--seed=11",
         "--inject=standard", f"--output={graph}"])
    run([cli, "detect", f"--graph={graph}", "--detector=VGOD",
         "--epoch-scale=0.05", "--seed=11", f"--save-model={prefix}",
         "--output=" + str(workdir / "old_scores.tsv")])
    run([cli, "export-bundle", f"--model={prefix}", "--detector=VGOD",
         f"--output={bundle}"])
    if not check(bundle.exists(), "export-bundle wrote no bundle"):
        return

    rules = write_rules(workdir)
    proc, port = start_server(serve_bin, [
        f"--bundle={bundle}", f"--graph={graph}", "--port=0", "--threads=2",
        f"--alert-rules={rules}", "--monitor-interval=0.2",
        "--drift-rotate-seconds=0.5", "--drift-min-count=8"])
    if port is None:
        return
    try:
        status, drift = http(port, "GET", "/debug/drift")
        check(status == 200 and drift.get("status") == "baseline_missing",
              f"unfingerprinted bundle drift status: {status} "
              f"{drift and drift.get('status')}")
        check(drift.get("baseline") is None,
              "baseline block present without a fingerprint")
        status, scored = http(port, "POST", "/score",
                              json.dumps({"nodes": [0, 1, 2, 3]}))
        check(status == 200 and len(scored.get("scores", [])) == 4,
              f"/score broken on unfingerprinted bundle: {status}")
        # The monitor keeps running: PSI stays 0 without a baseline, the
        # PSI rule stays inactive, evaluations accrue.
        wait_for(lambda: drift_gauges(port)
                 .get("drift.baseline.present") == 0 or None,
                 15, "drift gauges on the unfingerprinted server")
        gauges = drift_gauges(port)
        check(gauges.get("drift.baseline.present") == 0,
              f"drift.baseline.present is {gauges.get('drift.baseline.present')}")
        check(gauges.get("drift.score.psi", -1) == 0,
              f"PSI nonzero without a baseline: {gauges.get('drift.score.psi')}")
        rule = alert_state(port, "score-psi-high")
        check(rule and rule.get("state") == "inactive",
              f"PSI rule not inactive without a baseline: {rule}")
    finally:
        stop_server(proc, "vgod_serve (unfingerprinted)")


def check_hostile_rule_configs(serve_bin, workdir):
    """Every malformed --alert-rules file is a clean nonzero exit with a
    diagnostic — the server never comes up half-configured."""
    graph = workdir / "old.graph"
    bundle = workdir / "old_model.vgodb"
    hostile = [
        ("not json", "this is not an alert config"),
        ("rules not array", '{"rules": {"name": "a"}}'),
        ("unknown comparator",
         '{"rules": [{"name": "a", "metric": "m", "op": "~",'
         ' "threshold": 1}]}'),
        ("negative duration",
         '{"rules": [{"name": "a", "metric": "m", "op": ">",'
         ' "threshold": 1, "for_seconds": -2}]}'),
        ("duplicate names",
         '{"rules": [{"name": "a", "metric": "m", "op": ">", "threshold": 1},'
         ' {"name": "a", "metric": "m", "op": "<", "threshold": 0}]}'),
    ]
    for name, text in hostile:
        rules = workdir / "hostile_rules.json"
        rules.write_text(text)
        proc = subprocess.run(
            [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
             "--port=0", f"--alert-rules={rules}"],
            capture_output=True, text=True, timeout=60)
        check(proc.returncode != 0,
              f"hostile rules ({name}) accepted: exit {proc.returncode}")
        check("alert" in (proc.stdout + proc.stderr).lower(),
              f"hostile rules ({name}) rejection lacks a diagnostic: "
              f"{proc.stdout[-500:]} {proc.stderr[-500:]}")

    proc = subprocess.run(
        [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
         "--port=0", f"--alert-rules={workdir / 'does_not_exist.json'}"],
        capture_output=True, text=True, timeout=60)
    check(proc.returncode != 0, "missing --alert-rules file accepted")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to vgod_cli")
    parser.add_argument("--serve", required=True, help="path to vgod_serve")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="vgod_drift_check_") as tmp:
        workdir = Path(tmp)
        check_monitored_server(Path(args.cli), Path(args.serve), workdir)
        check_unfingerprinted_bundle(Path(args.cli), Path(args.serve),
                                     workdir)
        check_hostile_rule_configs(Path(args.serve), workdir)

    if ERRORS:
        print(f"\ncheck_drift: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_drift: all model-quality observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
