#!/usr/bin/env python3
"""Hostile-input sweep for the vgod crash-proofing layer.

Complements check_serve.py (the happy path) by attacking every untrusted
input surface documented in docs/ROBUSTNESS.md and asserting the process
degrades instead of dying:

  1. A live vgod_serve takes malformed JSON, bad and oversized
     Content-Length headers, unknown paths, wrong methods, and
     out-of-range node ids -- every attack must get a clean 4xx, the
     server must answer /healthz afterwards, and the serve.errors.*
     counters must move.
  2. With VGOD_FAULTS=serve.score=nan the detector emits NaN scores;
     /score must answer 500 (serve.errors.nonfinite_scores moves), the
     server must stay alive, and SIGTERM must still drain cleanly.
  3. Startup against a truncated bundle, an injected bundle short-read
     (VGOD_FAULTS=bundle.read=fail@2), and an injected dataset read
     failure (VGOD_FAULTS=dataset.read=fail) must exit 1 with an error
     message -- not die on a signal.
  4. vgod_cli eval against garbage and NaN score files must exit 1 with a
     clean error.

Run directly (`python3 tools/check_faults.py --cli build/tools/vgod_cli
--serve build/tools/vgod_serve`) or via ctest (check_faults, label
`faults`).
"""

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ERRORS = []

BANNER_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run(cmd, env_extra=None, expect_code=0):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    print("+", " ".join(str(c) for c in cmd))
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, env=env,
        timeout=480)
    if proc.returncode != expect_code:
        fail(f"expected exit {expect_code}, got {proc.returncode}: "
             f"{' '.join(map(str, cmd))}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
    return proc


def http(port, method, path, body=None, timeout=30):
    """Returns (status, parsed-json-or-None)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read().decode())
        except Exception:
            payload = None
        return error.code, payload


def raw_request(port, payload, timeout=30):
    """Sends raw bytes and returns the leading HTTP status code, or None."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(payload.encode())
        response = b""
        try:
            while chunk := s.recv(4096):
                response += chunk
        except socket.timeout:
            pass
    match = re.match(rb"HTTP/1\.1 (\d{3})", response)
    return int(match.group(1)) if match else None


def start_server(serve_bin, bundle, graph, env_extra=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
         "--port=0", "--threads=2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = BANNER_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        fail(f"vgod_serve never printed its port; output: {''.join(lines)}")
    return proc, port


def stop_server(proc, expect_drain=True):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("vgod_serve did not exit within 60s of SIGTERM")
        return
    check(proc.returncode == 0,
          f"vgod_serve exited {proc.returncode} after SIGTERM")
    if expect_drain:
        tail = proc.stdout.read()
        check("drained and stopped" in tail,
              f"vgod_serve did not report a clean drain; tail: {tail[-500:]}")


def counters(port):
    status, metrics = http(port, "GET", "/metrics")
    if not check(status == 200 and isinstance(metrics, dict),
                 f"/metrics unavailable during the sweep ({status})"):
        return {}
    return metrics.get("counters", {})


def alive(port, context):
    status, health = http(port, "GET", "/healthz")
    return check(status == 200 and health and health.get("status") == "ok",
                 f"server not healthy after {context} (status {status})")


def build_artifacts(cli, workdir):
    graph = workdir / "faults.graph"
    bundle = workdir / "faults.vgodb"
    scores = workdir / "faults_scores.tsv"
    run([cli, "generate", "--dataset=cora", "--scale=0.1", "--seed=11",
         "--inject=standard", f"--output={graph}"])
    run([cli, "detect", f"--graph={graph}", "--detector=VBM",
         "--epoch-scale=0.05", "--seed=11", f"--save-bundle={bundle}",
         f"--output={scores}"])
    check(bundle.exists(), "detect --save-bundle wrote no bundle")
    return graph, bundle, scores


def check_hostile_http_sweep(serve_bin, bundle, graph):
    proc, port = start_server(serve_bin, bundle, graph)
    if port is None:
        return
    try:
        before = counters(port)

        attacks = [
            # (description, expected status range, request thunk)
            ("non-JSON body", (400, 400),
             lambda: http(port, "POST", "/score", "this is not json")[0]),
            ("wrong nodes type", (400, 400),
             lambda: http(port, "POST", "/score", '{"nodes":"zero"}')[0]),
            ("out-of-range node", (400, 400),
             lambda: http(port, "POST", "/score", '{"nodes":[999999]}')[0]),
            ("empty body keys", (400, 400),
             lambda: http(port, "POST", "/score", "{}")[0]),
            ("unknown path", (404, 404),
             lambda: http(port, "GET", "/nope")[0]),
            ("wrong method", (405, 405),
             lambda: http(port, "PUT", "/healthz", "{}")[0]),
            ("malformed content-length", (400, 400),
             lambda: raw_request(
                 port, "POST /score HTTP/1.1\r\nHost: x\r\n"
                       "Connection: close\r\nContent-Length: 12abc\r\n\r\n")),
            ("negative content-length", (400, 400),
             lambda: raw_request(
                 port, "POST /score HTTP/1.1\r\nHost: x\r\n"
                       "Connection: close\r\nContent-Length: -1\r\n\r\n")),
            ("oversized content-length", (413, 413),
             lambda: raw_request(
                 port, "POST /score HTTP/1.1\r\nHost: x\r\n"
                       "Connection: close\r\n"
                       "Content-Length: 99999999999\r\n\r\n")),
            ("overflowing content-length", (413, 413),
             lambda: raw_request(
                 port, "POST /score HTTP/1.1\r\nHost: x\r\nConnection: close"
                       "\r\nContent-Length: 9903520314283042199192993792"
                       "\r\n\r\n")),
            ("garbage request line", (400, 400),
             lambda: raw_request(port, "garbage\r\n\r\n")),
        ]
        for description, (low, high), attack in attacks:
            status = attack()
            check(status is not None and low <= status <= high,
                  f"{description}: expected {low}..{high}, got {status}")
            # The cardinal rule: no attack takes the server down.
            if not alive(port, description):
                return

        after = counters(port)

        def moved(name, at_least=1):
            delta = after.get(name, 0) - before.get(name, 0)
            check(delta >= at_least,
                  f"{name} moved by {delta}, expected >= {at_least}")

        moved("serve.errors.bad_request", 6)
        moved("serve.errors.not_found")
        moved("serve.errors.method_not_allowed")
        moved("serve.errors.payload_too_large", 2)

        # A good request still works after the whole sweep.
        status, payload = http(port, "POST", "/score", '{"nodes":[0,1]}')
        check(status == 200 and payload and len(payload.get("scores", [])) == 2,
              f"good request after the sweep failed ({status})")
    finally:
        stop_server(proc)


def check_injected_nan_scores(serve_bin, bundle, graph):
    proc, port = start_server(serve_bin, bundle, graph,
                              env_extra={"VGOD_FAULTS": "serve.score=nan"})
    if port is None:
        return
    try:
        before = counters(port)
        status, payload = http(port, "POST", "/score", '{"nodes":[0,1]}')
        check(status == 500,
              f"injected NaN scores returned {status}, expected 500")
        check(payload and "unusable" in payload.get("error", ""),
              f"500 payload does not explain the NaN rejection: {payload}")
        if not alive(port, "injected NaN scores"):
            return
        after = counters(port)
        check(after.get("serve.errors.nonfinite_scores", 0) >
              before.get("serve.errors.nonfinite_scores", 0),
              "serve.errors.nonfinite_scores did not move")
        check(after.get("serve.errors.internal", 0) >
              before.get("serve.errors.internal", 0),
              "serve.errors.internal did not move")
    finally:
        stop_server(proc)


def serve_must_exit_1(serve_bin, bundle, graph, env_extra, context):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
         "--port=0"],
        capture_output=True, text=True, env=env, timeout=120)
    check(proc.returncode == 1,
          f"{context}: vgod_serve exited {proc.returncode}, expected a "
          f"clean error exit 1 (negative = killed by signal)")
    output = proc.stdout + proc.stderr
    check("error:" in output,
          f"{context}: no error message on exit; output: {output[-500:]}")


def check_startup_failures(serve_bin, bundle, graph, workdir):
    truncated = workdir / "truncated.vgodb"
    truncated.write_bytes(bundle.read_bytes()[: bundle.stat().st_size * 2 // 3])
    serve_must_exit_1(serve_bin, truncated, graph, None, "truncated bundle")
    serve_must_exit_1(serve_bin, bundle, graph,
                      {"VGOD_FAULTS": "bundle.read=fail@2"},
                      "injected bundle short-read")
    serve_must_exit_1(serve_bin, bundle, graph,
                      {"VGOD_FAULTS": "dataset.read=fail"},
                      "injected dataset read failure")


def check_cli_eval_hardening(cli, graph, workdir):
    garbage = workdir / "garbage_scores.tsv"
    garbage.write_text("0\t0.5\nthis is not a score row\n")
    proc = run([cli, "eval", f"--graph={graph}", f"--scores={garbage}"],
               expect_code=1)
    check("malformed score file" in proc.stdout + proc.stderr,
          "garbage score file: no clean error message")

    # "nan" either parses to a NaN score (rejected by the non-finite
    # check) or fails float extraction (rejected as malformed); both must
    # be a clean exit-1 error, never a confident wrong AUC or a crash.
    nans = workdir / "nan_scores.tsv"
    nans.write_text("0\t0.5\n1\tnan\n")
    proc = run([cli, "eval", f"--graph={graph}", f"--scores={nans}"],
               expect_code=1)
    output = proc.stdout + proc.stderr
    check("non-finite" in output or "malformed score file" in output,
          "NaN score file: no clean error message")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to vgod_cli")
    parser.add_argument("--serve", required=True, help="path to vgod_serve")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="vgod_faults_check_") as tmp:
        workdir = Path(tmp)
        cli, serve_bin = Path(args.cli), Path(args.serve)
        graph, bundle, _ = build_artifacts(cli, workdir)
        if not ERRORS:
            check_hostile_http_sweep(serve_bin, bundle, graph)
            check_injected_nan_scores(serve_bin, bundle, graph)
            check_startup_failures(serve_bin, bundle, graph, workdir)
            check_cli_eval_hardening(cli, graph, workdir)

    if ERRORS:
        print(f"\ncheck_faults: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_faults: all crash-proofing checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
