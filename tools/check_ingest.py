#!/usr/bin/env python3
"""End-to-end validator for the streaming ingest path (docs/STREAMING.md).

Drives a live `vgod_serve --streaming` instance:

  1. `vgod_cli generate` + `vgod_cli detect --save-bundle` produce a small
     graph and VBM bundle.
  2. `vgod_serve --streaming` boots on an ephemeral port; /healthz must
     advertise streaming mode, the split probes /healthz/live and
     /healthz/ready must both answer 200.
  3. Valid event batches (node appends, edge insert/delete, attribute
     updates, forced compaction) must apply with consistent bookkeeping in
     the /ingest response (events_applied, num_nodes, delta_ops).
  4. Hostile events — out-of-range endpoints, self loops, duplicate
     inserts, phantom removes, wrong attribute widths, non-integer ids,
     oversized batches, malformed JSON — must each produce a clean 4xx
     (all-or-nothing: nothing applies), with the server alive after every
     rejection.
  5. GET /debug/watchlist must return score-descending entries honoring
     ?k=, and reject bad k values.
  6. The stream.* metrics must move and agree between the JSON export and
     the Prometheus exposition; stream.nodes must equal the /healthz node
     count.
  7. A server booted WITHOUT --streaming must 4xx /ingest and
     /debug/watchlist but keep serving /score.
  8. SIGTERM must drain and exit 0.

Run directly (`python3 tools/check_ingest.py --cli build/tools/vgod_cli
--serve build/tools/vgod_serve`) or via ctest (registered as check_ingest
under the `faults` label).
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ERRORS = []

BANNER_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run(cmd, env_extra=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    print("+", " ".join(str(c) for c in cmd))
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, env=env,
        timeout=480)
    if proc.returncode != 0:
        fail(f"command failed ({proc.returncode}): {' '.join(map(str, cmd))}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
    return proc


def http(port, method, path, body=None, timeout=30):
    """Returns (status, parsed-json-or-None)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read().decode())
        except Exception:
            payload = None
        return error.code, payload


def http_text(port, path, timeout=30):
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, ""


def start_server(serve_bin, bundle, graph, extra_flags):
    proc = subprocess.Popen(
        [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
         "--port=0", "--threads=2", "--max-batch=4", "--max-delay-us=500"]
        + extra_flags,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = BANNER_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        fail(f"vgod_serve never printed its port; output: {''.join(lines)}")
    return proc, port


def stop_server(proc, name):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{name} did not exit within 60s of SIGTERM")
        return
    check(proc.returncode == 0, f"{name} exited {proc.returncode}")


def ingest(port, events, compact=None):
    body = {"events": events}
    if compact is not None:
        body["compact"] = compact
    return http(port, "POST", "/ingest", json.dumps(body))


def alive(port, context):
    status, payload = http(port, "GET", "/healthz/live")
    check(status == 200 and payload and payload.get("status") == "live",
          f"server not live after {context}: {status} {payload}")


def check_valid_batches(port, dim, boot_nodes):
    # Node appends: ids are assigned sequentially past the boot graph.
    status, reply = ingest(port, [
        {"op": "add_node", "attributes": [0.5] * dim},
        {"op": "add_node", "attributes": [-0.5] * dim},
    ])
    if not check(status == 200, f"add_node batch returned {status}: {reply}"):
        return None
    check(reply.get("events_applied") == 2,
          f"add_node batch applied {reply.get('events_applied')} events")
    check(reply.get("num_nodes") == boot_nodes + 2,
          f"num_nodes is {reply.get('num_nodes')}, want {boot_nodes + 2}")
    check(reply.get("request_id", 0) > 0, "/ingest response lacks request_id")
    a, b = boot_nodes, boot_nodes + 1

    # Edge insert between the two fresh nodes (guaranteed absent), then
    # an attribute update, then the delete. touched_nodes certifies the
    # O(deg) update: an edge event touches exactly its two endpoints.
    status, reply = ingest(port, [{"op": "add_edge", "u": a, "v": b}])
    check(status == 200, f"add_edge returned {status}: {reply}")
    check(reply and reply.get("touched_nodes") == 2,
          f"add_edge touched {reply and reply.get('touched_nodes')} nodes, "
          f"want exactly the 2 endpoints")

    status, reply = ingest(
        port, [{"op": "update_attributes", "node": a,
                "attributes": [0.25] * dim}])
    check(status == 200, f"update_attributes returned {status}: {reply}")
    # Node a currently has exactly one neighbor (b): itself + 1.
    check(reply and reply.get("touched_nodes") == 2,
          f"update_attributes touched {reply and reply.get('touched_nodes')}")

    status, reply = ingest(port, [{"op": "remove_edge", "u": a, "v": b}])
    check(status == 200, f"remove_edge returned {status}: {reply}")

    # The published snapshot immediately serves the appended nodes.
    status, scored = http(port, "POST", "/score",
                          json.dumps({"nodes": [a, b]}))
    check(status == 200 and scored and len(scored.get("scores", [])) == 2,
          f"scoring appended nodes failed: {status} {scored}")

    # Forced compaction folds the overlay into a fresh base.
    status, reply = ingest(port, [], compact=True)
    check(status == 200, f"compact batch returned {status}: {reply}")
    check(reply and reply.get("compacted") is True,
          f"compact:true did not compact: {reply}")
    check(reply and reply.get("delta_ops") == 0,
          f"delta_ops nonzero after compaction: {reply}")
    check(reply and reply.get("compactions", 0) >= 1,
          f"compaction count did not move: {reply}")
    return a


def check_hostile_events(port, dim, boot_nodes):
    status, before = http(port, "GET", "/healthz")
    nodes_before = before.get("nodes") if before else None
    hostile = [
        ("out-of-range endpoint",
         [{"op": "add_edge", "u": 0, "v": 10 ** 9}]),
        ("negative endpoint", [{"op": "add_edge", "u": -1, "v": 2}]),
        ("self loop", [{"op": "add_edge", "u": 3, "v": 3}]),
        ("phantom remove — all-or-nothing",
         [{"op": "add_node", "attributes": [0.0] * dim},
          {"op": "remove_edge", "u": 10 ** 8, "v": 10 ** 8 + 1}]),
        ("wrong attribute width",
         [{"op": "update_attributes", "node": 0,
           "attributes": [0.0] * (dim + 3)}]),
        ("empty attribute row", [{"op": "add_node", "attributes": []}]),
        ("non-integer node id",
         [{"op": "update_attributes", "node": 1.5,
           "attributes": [0.0] * dim}]),
        ("unknown op", [{"op": "merge_nodes", "u": 0, "v": 1}]),
        ("missing endpoint field", [{"op": "add_edge", "u": 0}]),
        ("non-finite attribute",
         [{"op": "add_node", "attributes": ["nan"] * dim}]),
    ]
    for name, events in hostile:
        status, reply = ingest(port, events)
        check(400 <= status < 500,
              f"hostile batch ({name}) returned {status}, want 4xx: {reply}")
        alive(port, f"hostile batch ({name})")

    # Duplicate insert: first add applies, identical re-add must reject.
    a = boot_nodes  # Appended by check_valid_batches.
    status, _ = ingest(port, [{"op": "add_edge", "u": 0, "v": a}])
    check(status == 200, f"setup edge for duplicate test returned {status}")
    status, reply = ingest(port, [{"op": "add_edge", "u": a, "v": 0}])
    check(400 <= status < 500,
          f"duplicate (mirrored) insert returned {status}: {reply}")

    # Malformed envelopes.
    for name, body in [
        ("not json", "this is not json"),
        ("events not array", '{"events":{}}'),
        ("event not object", '{"events":[42]}'),
        ("no events key", '{"compact":true}'),
    ]:
        status, reply = http(port, "POST", "/ingest", body)
        check(400 <= status < 500,
              f"malformed envelope ({name}) returned {status}: {reply}")
        alive(port, f"malformed envelope ({name})")

    # Oversized batch: --max-events on the command line caps each request.
    status, reply = ingest(
        port, [{"op": "add_node", "attributes": [0.0] * dim}] * 65)
    check(status == 400,
          f"oversized batch returned {status}, want 400: {reply}")

    # Wrong method.
    status, _ = http(port, "GET", "/ingest")
    check(status == 405, f"GET /ingest returned {status}, want 405")

    # Nothing hostile may have mutated the graph (the one setup edge and
    # nothing else): node count is unchanged from before the sweep.
    status, after = http(port, "GET", "/healthz")
    check(status == 200 and after and after.get("nodes") == nodes_before,
          f"hostile sweep changed node count: {nodes_before} -> "
          f"{after and after.get('nodes')}")


def check_watchlist(port):
    status, reply = http(port, "GET", "/debug/watchlist")
    if not check(status == 200 and isinstance(reply, dict),
                 f"/debug/watchlist returned {status}: {reply}"):
        return
    entries = reply.get("watchlist", [])
    check(len(entries) == 5,
          f"default watchlist size is {len(entries)}, want k=5 from flags")
    scores = [e.get("score") for e in entries]
    check(all(isinstance(s, (int, float)) for s in scores),
          f"watchlist entries lack scores: {entries}")
    check(scores == sorted(scores, reverse=True),
          f"watchlist not score-descending: {scores}")
    for entry in entries:
        check(entry.get("node", -1) >= 0,
              f"watchlist entry lacks a node id: {entry}")

    status, reply = http(port, "GET", "/debug/watchlist?k=3")
    check(status == 200 and len(reply.get("watchlist", [])) == 3,
          f"?k=3 returned {reply}")
    for bad in ("0", "-2", "abc", "100001"):
        status, _ = http(port, "GET", f"/debug/watchlist?k={bad}")
        check(status == 400, f"?k={bad} returned {status}, want 400")


def check_stream_metrics(port):
    status, metrics = http(port, "GET", "/metrics")
    if not check(status == 200 and isinstance(metrics, dict),
                 f"/metrics returned {status}"):
        return
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    check(counters.get("stream.events.total", 0) >= 6,
          f"stream.events.total is {counters.get('stream.events.total')}")
    check(counters.get("stream.ingest.batches", 0) >= 5,
          "stream.ingest.batches did not move")
    # Only batches that parse but fail graph-state validation count here;
    # malformed envelopes are rejected earlier by the HTTP layer.
    check(counters.get("stream.ingest.rejected", 0) >= 5,
          "stream.ingest.rejected did not count the hostile sweep")
    for op in ("add_edge", "remove_edge", "add_node", "update_attributes"):
        check(counters.get(f"stream.events.{op}", 0) >= 1,
              f"stream.events.{op} did not move")
    check(gauges.get("stream.compactions", 0) >= 1,
          "stream.compactions gauge did not move")
    touched = histograms.get("stream.touched_nodes.per_event")
    check(touched is not None and touched.get("count", 0) >= 6,
          "stream.touched_nodes.per_event histogram did not move")
    latency = histograms.get("stream.ingest.latency.seconds")
    check(latency is not None and latency.get("count", 0) >= 5,
          "stream.ingest.latency.seconds histogram did not move")
    compaction = histograms.get("stream.compaction.seconds")
    check(compaction is not None and compaction.get("count", 0) >= 1,
          "stream.compaction.seconds histogram did not move")

    # stream.nodes agrees with /healthz.
    status, health = http(port, "GET", "/healthz")
    check(status == 200 and health and
          gauges.get("stream.nodes") == health.get("nodes"),
          f"stream.nodes gauge {gauges.get('stream.nodes')} != /healthz "
          f"nodes {health and health.get('nodes')}")

    # Prometheus exposition agrees with the JSON export on the stream
    # counters (none of which move on a metrics scrape itself).
    status, text = http_text(port, "/metrics?format=prometheus")
    if not check(status == 200, f"prometheus export returned {status}"):
        return
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 2 and "{" not in parts[0]:
            samples[parts[0]] = float(parts[1])
    for json_name in ("stream.events.total", "stream.ingest.batches",
                      "stream.ingest.rejected"):
        prom_name = json_name.replace(".", "_")
        check(samples.get(prom_name) == counters.get(json_name),
              f"{prom_name}={samples.get(prom_name)} in prometheus but "
              f"{json_name}={counters.get(json_name)} in JSON")
    check(samples.get("stream_nodes") == gauges.get("stream.nodes"),
          "stream_nodes disagrees between exports")
    check(samples.get("stream_touched_nodes_per_event_count") ==
          touched.get("count") if touched else False,
          "touched-nodes histogram count disagrees between exports")


def check_streaming_server(cli, serve_bin, workdir):
    graph = workdir / "stream.graph"
    bundle = workdir / "stream_model.vgodb"
    run([cli, "generate", "--dataset=cora", "--scale=0.1", "--seed=7",
         "--inject=standard", f"--output={graph}"])
    run([cli, "detect", f"--graph={graph}", "--detector=VBM",
         "--epoch-scale=0.05", "--seed=7", f"--save-bundle={bundle}",
         "--output=" + str(workdir / "stream_scores.tsv")])
    if not check(bundle.exists(), "detect wrote no bundle"):
        return

    proc, port = start_server(
        serve_bin, bundle, graph,
        ["--streaming", "--watchlist-k=5", "--compact-every=1000",
         "--max-events=64"])
    if port is None:
        return
    try:
        status, health = http(port, "GET", "/healthz")
        if not check(status == 200 and isinstance(health, dict),
                     f"/healthz returned {status}"):
            return
        check(health.get("streaming") is True,
              f"/healthz does not advertise streaming: {health}")
        dim = health.get("attribute_dim", 0)
        boot_nodes = health.get("nodes", 0)
        if not check(dim > 0 and boot_nodes > 0,
                     f"/healthz lacks attribute_dim/nodes: {health}"):
            return

        # Split probes: both must be green on a healthy streaming server.
        status, live = http(port, "GET", "/healthz/live")
        check(status == 200 and live.get("status") == "live",
              f"/healthz/live: {status} {live}")
        status, ready = http(port, "GET", "/healthz/ready")
        check(status == 200 and ready.get("status") == "ready",
              f"/healthz/ready: {status} {ready}")
        status, _ = http(port, "POST", "/healthz/ready", "{}")
        check(status == 405, f"POST readiness probe returned {status}")

        check_valid_batches(port, dim, boot_nodes)
        check_hostile_events(port, dim, boot_nodes)
        check_watchlist(port)
        check_stream_metrics(port)
    finally:
        stop_server(proc, "vgod_serve --streaming")


def check_non_streaming_server(cli, serve_bin, workdir):
    graph = workdir / "stream.graph"
    bundle = workdir / "stream_model.vgodb"
    proc, port = start_server(serve_bin, bundle, graph, [])
    if port is None:
        return
    try:
        status, health = http(port, "GET", "/healthz")
        check(status == 200 and health and health.get("streaming") is False,
              f"non-streaming /healthz: {status} {health}")
        status, reply = ingest(port, [{"op": "add_edge", "u": 0, "v": 1}])
        check(400 <= status < 600 and status != 200,
              f"/ingest without --streaming returned {status}")
        check(reply and "streaming" in str(reply.get("error", "")),
              f"/ingest rejection does not explain itself: {reply}")
        status, _ = http(port, "GET", "/debug/watchlist")
        check(status != 200,
              f"/debug/watchlist without --streaming returned {status}")
        status, scored = http(port, "POST", "/score",
                              json.dumps({"nodes": [0, 1]}))
        check(status == 200 and scored and len(scored.get("scores", [])) == 2,
              f"/score broken on a non-streaming server: {status}")
    finally:
        stop_server(proc, "vgod_serve")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to vgod_cli")
    parser.add_argument("--serve", required=True, help="path to vgod_serve")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="vgod_ingest_check_") as tmp:
        workdir = Path(tmp)
        check_streaming_server(Path(args.cli), Path(args.serve), workdir)
        check_non_streaming_server(Path(args.cli), Path(args.serve), workdir)

    if ERRORS:
        print(f"\ncheck_ingest: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_ingest: all streaming ingest checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
