#!/usr/bin/env python3
"""Benchmark-matrix regression gate (docs/BENCHMARKS.md).

Runs `matrix_runner` on the committed CI spec and validates the resulting
leaderboard end to end:

  * schema: version, spec echo, one cell per (detector, dataset, regime,
    seed), status vocabulary, metrics in range, summary/rank tables sized
    and cross-consistent with the cells;
  * determinism: a second run at a different thread count must produce a
    byte-identical `--no-timing` artifact (docs/PARALLELISM.md);
  * regression bands: per-cell AUC means against the "matrix" section of
    bench/matrix_baselines.json (same {metric: {min,max}} machinery as
    check_bench.py) plus VGOD rank bands per regime from the "ranks"
    section — VGOD must keep its leaderboard position, not just its raw
    numbers;
  * gate self-test: a deliberately perturbed copy of the fresh leaderboard
    must be rejected by the band check (guards against a vacuous gate);
  * failure isolation: a micro-matrix run under
    VGOD_FAULTS=vbm.loss=nan@1 must record the VBM cell as "failed" while
    the Deg cell stays "ok" and the runner still exits 0.

Run directly (`python3 tools/check_matrix.py --runner build/bench/matrix_runner
--spec bench/matrix_specs/ci.json --baselines bench/matrix_baselines.json`)
or via ctest (registered as check_matrix with the `matrix` label). Pass
--update to regenerate the baselines file from the fresh run instead of
gating against it.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import check_bench
from check_bench import ERRORS, check, check_band_map, fail, matrix_metrics

CELL_STATUSES = {"ok", "failed", "timeout"}


def run_matrix(runner, spec_path, out_path, threads=0, no_timing=False,
               env_extra=None):
    env = dict(os.environ)
    env.pop("VGOD_BENCH_MANIFEST", None)
    if env_extra:
        env.update(env_extra)
    cmd = [str(runner), f"--spec={spec_path}", f"--out={out_path}", "--quiet"]
    if threads:
        cmd.append(f"--threads={threads}")
    if no_timing:
        cmd.append("--no-timing")
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=480)
    if proc.returncode != 0:
        fail(f"matrix_runner exited {proc.returncode}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
        return None
    if not check(Path(out_path).exists(), "matrix_runner wrote no artifact"):
        return None
    return json.loads(Path(out_path).read_text())


def validate_schema(board, spec):
    """Structural validation of a leaderboard artifact against its spec."""
    check(board.get("schema_version") == 1,
          f"schema_version {board.get('schema_version')} != 1")
    echoed = board.get("spec", {})
    for axis in ("detectors", "datasets", "regimes", "seeds"):
        check(echoed.get(axis) == spec[axis],
              f"spec echo mismatch on {axis}: {echoed.get(axis)}")

    cells = board.get("cells", [])
    want = (len(spec["detectors"]) * len(spec["datasets"]) *
            len(spec["regimes"]) * len(spec["seeds"]))
    if not check(len(cells) == want,
                 f"{len(cells)} cells, want {want}"):
        return
    seen = set()
    for cell in cells:
        key = (cell.get("detector"), cell.get("dataset"), cell.get("regime"),
               cell.get("seed"))
        check(key not in seen, f"duplicate cell {key}")
        seen.add(key)
        status = cell.get("status")
        if not check(status in CELL_STATUSES,
                     f"cell {key} has unknown status {status!r}"):
            continue
        if status == "ok":
            check(0.0 <= cell.get("auc", -1) <= 1.0,
                  f"cell {key} auc {cell.get('auc')} outside [0, 1]")
            check(0.0 <= cell.get("ap", -1) <= 1.0,
                  f"cell {key} ap {cell.get('ap')} outside [0, 1]")
        else:
            check(bool(cell.get("error")),
                  f"non-ok cell {key} carries no error message")
        if board.get("timing_included"):
            check(cell.get("wall_seconds", -1) >= 0,
                  f"cell {key} wall_seconds missing/negative")
            check(cell.get("peak_tensor_bytes", -1) >= 0,
                  f"cell {key} peak_tensor_bytes missing/negative")

    summary = board.get("summary", [])
    want_rows = (len(spec["detectors"]) * len(spec["datasets"]) *
                 len(spec["regimes"]))
    check(len(summary) == want_rows,
          f"{len(summary)} summary rows, want {want_rows}")
    for row in summary:
        check(row.get("seeds_ok", -1) + row.get("seeds_failed", -1)
              == len(spec["seeds"]),
              f"summary row {row.get('detector')}/{row.get('dataset')}/"
              f"{row.get('regime')}: seeds_ok+seeds_failed != "
              f"{len(spec['seeds'])}")

    ranks = board.get("ranks", {})
    check(sorted(ranks.keys()) == sorted(spec["regimes"]),
          f"ranks table regimes {sorted(ranks.keys())} != spec regimes")
    for regime, rows in ranks.items():
        ranked = sorted(r["rank"] for r in rows if r.get("cells_ok", 0) > 0)
        check(ranked == list(range(1, len(ranked) + 1)),
              f"regime {regime}: ranks {ranked} are not 1..{len(ranked)}")


def vgod_ranks(board):
    """{regime: VGOD's per-regime rank} (0 = every VGOD cell failed)."""
    out = {}
    for regime, rows in board.get("ranks", {}).items():
        for row in rows:
            if row["detector"] == "VGOD":
                out[regime] = row["rank"]
    return out


def check_rank_bands(board, baselines):
    bands = baselines.get("ranks", {})
    if not check(bands, "matrix baselines declare no rank bands"):
        return
    ranks = vgod_ranks(board)
    for regime, band in sorted(bands.items()):
        if not check(regime in ranks,
                     f"leaderboard has no VGOD rank for regime {regime}"):
            continue
        rank = ranks[regime]
        check(band["min"] <= rank <= band["max"],
              f"VGOD rank in {regime} is {rank}, outside committed band "
              f"[{band['min']}, {band['max']}]")


def check_perturbation_rejected(board, baselines):
    """The gate must reject a leaderboard whose banded metrics drift: take
    the fresh artifact, push one banded summary AUC far outside its band,
    and require the band check to flag it. A gate that passes the perturbed
    copy is vacuous."""
    bands = baselines.get("matrix", {})
    auc_bands = {k: v for k, v in bands.items() if k.endswith(".auc_mean")}
    if not check(auc_bands, "no auc_mean bands to self-test against"):
        return
    target = sorted(auc_bands)[0]
    dataset_regime, detector, _ = target.rsplit(".", 2)
    dataset, regime = dataset_regime.split(".", 1)
    perturbed = json.loads(json.dumps(board))  # deep copy
    hit = False
    for row in perturbed.get("summary", []):
        if (row["detector"] == detector and row["dataset"] == dataset
                and row["regime"] == regime):
            row["auc_mean"] = auc_bands[target]["max"] + 0.5
            hit = True
    if not check(hit, f"perturbation target {target} not in summary"):
        return
    before = len(ERRORS)
    check_band_map(matrix_metrics(perturbed), bands, "self-test")
    caught = len(ERRORS) > before
    # The self-test failures are expected — remove them from the ledger,
    # then record the real verdict.
    del ERRORS[before:]
    check(caught, "gate self-test: perturbed leaderboard was NOT rejected "
                  "(band check is vacuous)")
    if caught:
        print("gate self-test: perturbed leaderboard correctly rejected")


def check_fault_isolation(runner, tmp):
    """A faulted detector cell must fail in isolation: under
    VGOD_FAULTS=vbm.loss=nan@1 the VBM fit diverges (detectors/vbm.cc), its
    cell records status "failed", and the co-scheduled Deg cell — same
    dataset case — still scores, with the runner exiting 0."""
    spec = {
        "detectors": ["VBM", "Deg"],
        "datasets": ["cora"],
        "regimes": ["structural"],
        "seeds": [7],
        "scale": 0.05,
        "epoch_scale": 0.05,
        "injection": {"clique_size": 5, "candidate_set": 20},
    }
    spec_path = tmp / "fault_spec.json"
    spec_path.write_text(json.dumps(spec))
    board = run_matrix(runner, spec_path, tmp / "fault_leaderboard.json",
                       env_extra={"VGOD_FAULTS": "vbm.loss=nan@1"})
    if board is None:
        return
    statuses = {c["detector"]: c for c in board["cells"]}
    vbm = statuses.get("VBM", {})
    deg = statuses.get("Deg", {})
    check(vbm.get("status") == "failed",
          f"faulted VBM cell status {vbm.get('status')!r}, want 'failed'")
    check("diverge" in vbm.get("error", "").lower()
          or "finite" in vbm.get("error", "").lower()
          or vbm.get("error"),
          "faulted VBM cell carries no error message")
    check(deg.get("status") == "ok",
          f"Deg cell status {deg.get('status')!r}, want 'ok' — the fault "
          "leaked across cells")
    if not ERRORS:
        print("fault isolation: VBM cell failed alone, Deg cell survived")


def update_baselines(board, baselines_path, margin=0.12):
    """Regenerates matrix_baselines.json from a fresh leaderboard: AUC
    bands at mean +/- (margin + observed std), clamped to [0, 1], plus
    VGOD rank bands with one position of slack."""
    bands = {}
    for row in board.get("summary", []):
        if row["seeds_ok"] == 0:
            continue
        key = (f'{row["dataset"]}.{row["regime"]}.{row["detector"]}'
               f'.auc_mean')
        slack = margin + row["auc_std"]
        bands[key] = {"min": round(max(0.0, row["auc_mean"] - slack), 4),
                      "max": round(min(1.0, row["auc_mean"] + slack), 4)}
    ranks = {}
    n_detectors = len(board["spec"]["detectors"])
    for regime, rank in sorted(vgod_ranks(board).items()):
        ranks[regime] = {"min": 1, "max": min(n_detectors, rank + 1)}
    doc = {
        "_comment": [
            "Tolerance bands for the benchmark-matrix gate "
            "(tools/check_matrix.py, docs/BENCHMARKS.md).",
            "Generated with --update from a fresh ci.json run; bands are "
            "mean +/- (0.12 + std) so they catch real regressions "
            "(a detector losing its signal, ranks flipping) but tolerate "
            "cross-platform libm jitter.",
            "'matrix' bands are also consumable by check_bench.py "
            "--matrix <leaderboard.json>.",
        ],
        "matrix": bands,
        "ranks": ranks,
    }
    Path(baselines_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {baselines_path}: {len(bands)} cell bands, "
          f"{len(ranks)} rank bands")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runner", required=True, help="path to matrix_runner")
    parser.add_argument("--spec", required=True,
                        help="path to the matrix spec JSON (ci.json)")
    parser.add_argument("--baselines", required=True,
                        help="path to bench/matrix_baselines.json")
    parser.add_argument("--update", action="store_true",
                        help="regenerate --baselines from this run instead "
                             "of gating against it")
    args = parser.parse_args()

    spec = json.loads(Path(args.spec).read_text())
    with tempfile.TemporaryDirectory(prefix="vgod_check_matrix_") as tmp:
        tmp = Path(tmp)
        board = run_matrix(args.runner, args.spec, tmp / "leaderboard.json")
        if board is None:
            return finish()
        validate_schema(board, spec)

        # Determinism: a --no-timing artifact must be byte-identical at
        # different thread counts.
        a = tmp / "lb_t1.json"
        b = tmp / "lb_t4.json"
        run_matrix(args.runner, args.spec, a, threads=1, no_timing=True)
        run_matrix(args.runner, args.spec, b, threads=4, no_timing=True)
        if a.exists() and b.exists():
            check(a.read_bytes() == b.read_bytes(),
                  "no-timing leaderboards differ between 1 and 4 threads "
                  "(determinism contract broken)")

        if args.update:
            update_baselines(board, args.baselines)
        else:
            baselines = json.loads(Path(args.baselines).read_text())
            check_band_map(matrix_metrics(board),
                           baselines.get("matrix", {}), "matrix")
            check_rank_bands(board, baselines)
            check_perturbation_rejected(board, baselines)

        check_fault_isolation(args.runner, tmp)
    return finish()


def finish():
    if ERRORS:
        print(f"\ncheck_matrix: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_matrix: leaderboard is valid, deterministic, inside the "
          "committed bands, and isolates cell failures")
    return 0


if __name__ == "__main__":
    sys.exit(main())
