#!/usr/bin/env python3
"""End-to-end validator for the compute profiler (docs/OBSERVABILITY.md).

Exercises both profiler surfaces:

  1. `vgod_cli detect --profile_out` must write a folded-stack file whose
     every line matches `frame(;frame)* <nanoseconds>`, and a `.json`
     variant whose call tree satisfies the structural invariant at every
     node: sum of child inclusive_ns <= parent inclusive_ns, with
     exclusive_ns the exact remainder. The tree must contain the
     detector/kernel scopes the instrumentation promises.
  2. A live `vgod_serve` under concurrent /score traffic must answer
     GET /debug/profile?seconds=N with a windowed capture in which the
     serve/score subtree exists and >= 90% of its inclusive time is
     attributed to named child scopes (detector/graph/kernel/gnn regions)
     rather than unattributed self time. The folded format variant and
     parameter validation (seconds out of range, POST) are checked too.

Run directly (`python3 tools/check_profile.py --cli build/tools/vgod_cli
--serve build/tools/vgod_serve`) or via ctest (registered as
check_profile).
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

ERRORS = []

BANNER_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")
FOLDED_LINE_RE = re.compile(r"^[^ ;]+(;[^ ;]+)* \d+$")


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run(cmd, env_extra=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    print("+", " ".join(str(c) for c in cmd))
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, env=env,
        timeout=480)
    if proc.returncode != 0:
        fail(f"command failed ({proc.returncode}): {' '.join(map(str, cmd))}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
    return proc


def http(port, method, path, body=None, timeout=90):
    """Returns (status, body-text)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


# --- call-tree checks ---------------------------------------------------


def walk_tree(node, path=""):
    """Yields (path, node) for every node below (and including) `node`."""
    name = node.get("name", "")
    here = f"{path};{name}" if path and name else (name or path)
    yield here, node
    for child in node.get("children", []):
        yield from walk_tree(child, here)


def check_tree_invariant(root, context):
    """sum(child inclusive) <= parent inclusive; exclusive is the rest."""
    for path, node in walk_tree(root):
        child_sum = sum(c.get("inclusive_ns", 0)
                        for c in node.get("children", []))
        inclusive = node.get("inclusive_ns", 0)
        exclusive = node.get("exclusive_ns", 0)
        check(child_sum <= inclusive,
              f"{context}: node '{path}' child inclusive sum {child_sum} "
              f"exceeds parent inclusive {inclusive}")
        check(exclusive == inclusive - child_sum,
              f"{context}: node '{path}' exclusive {exclusive} != "
              f"inclusive {inclusive} - child sum {child_sum}")
        check(node.get("calls", 0) >= 0 and inclusive >= 0,
              f"{context}: node '{path}' has negative counters")


def find_node(root, name):
    for _, node in walk_tree(root):
        if node.get("name") == name:
            return node
    return None


def check_folded(text, context):
    lines = [line for line in text.splitlines() if line]
    if not check(lines, f"{context}: folded output is empty"):
        return
    for line in lines:
        check(FOLDED_LINE_RE.match(line) is not None,
              f"{context}: malformed folded line {line!r}")
    check(lines == sorted(lines), f"{context}: folded lines are not sorted")


# --- vgod_cli --profile_out --------------------------------------------


def check_cli_profile(cli, workdir):
    graph = workdir / "profile.graph"
    run([cli, "generate", "--dataset=cora", "--scale=0.1", "--seed=7",
         "--inject=standard", f"--output={graph}"])

    folded = workdir / "detect.folded"
    proc = run([cli, "detect", f"--graph={graph}", "--detector=VGOD",
                "--epoch-scale=0.05", "--seed=7",
                f"--profile_out={folded}"])
    check("wrote profile to" in proc.stdout,
          "detect --profile_out did not report writing the profile")
    if check(folded.exists(), "--profile_out wrote no folded file"):
        text = folded.read_text()
        check_folded(text, "cli folded")
        check("kernel/" in text,
              "cli folded profile has no kernel/* frames")
        check("detector/vgod_fit" in text,
              "cli folded profile lacks the detector/vgod_fit phase")

    tree_path = workdir / "detect_profile.json"
    run([cli, "detect", f"--graph={graph}", "--detector=VGOD",
         "--epoch-scale=0.05", "--seed=7", f"--profile_out={tree_path}"])
    if not check(tree_path.exists(), "--profile_out wrote no json file"):
        return
    root = json.loads(tree_path.read_text())
    check_tree_invariant(root, "cli tree")
    fit = find_node(root, "detector/vgod_fit")
    if check(fit is not None, "cli tree lacks detector/vgod_fit"):
        check(fit.get("calls") == 1,
              f"detector/vgod_fit calls {fit.get('calls')} != 1")
        check(fit.get("peak_bytes", 0) > 0,
              "detector/vgod_fit recorded no tensor memory phase peak")
        check(fit.get("children"),
              "detector/vgod_fit has no child scopes (kernels were not "
              "attributed under the fit phase)")
    score = find_node(root, "detector/vgod_score")
    if check(score is not None, "cli tree lacks detector/vgod_score"):
        check(score.get("inclusive_ns", 0) > 0,
              "detector/vgod_score recorded no time")
    matmul = find_node(root, "kernel/matmul")
    if check(matmul is not None, "cli tree lacks kernel/matmul"):
        check(matmul.get("bytes", 0) > 0,
              "kernel/matmul attributed no bytes")


# --- /debug/profile against a live server ------------------------------


def start_server(serve_bin, bundle, graph):
    proc = subprocess.Popen(
        [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
         "--port=0", "--threads=2", "--max-batch=4", "--max-delay-us=500"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = BANNER_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        fail(f"vgod_serve never printed its port; output: {''.join(lines)}")
    return proc, port


def score_loop(port, stop_event):
    body = json.dumps({"nodes": [0, 1, 2, 3, 4, 5, 6, 7]})
    while not stop_event.is_set():
        try:
            http(port, "POST", "/score", body, timeout=30)
        except Exception:
            time.sleep(0.05)


def check_serve_profile(cli, serve_bin, workdir):
    graph = workdir / "serve.graph"
    bundle = workdir / "model.vgodb"
    run([cli, "generate", "--dataset=cora", "--scale=0.1", "--seed=7",
         "--inject=standard", f"--output={graph}"])
    run([cli, "detect", f"--graph={graph}", "--detector=VBM",
         "--epoch-scale=0.05", "--seed=7", f"--save-bundle={bundle}"])

    proc, port = start_server(serve_bin, bundle, graph)
    if port is None:
        return
    try:
        # Parameter validation before any load.
        status, _ = http(port, "GET", "/debug/profile?seconds=0")
        check(status == 400, f"seconds=0 returned {status}, want 400")
        status, _ = http(port, "GET", "/debug/profile?seconds=90")
        check(status == 400, f"seconds=90 returned {status}, want 400")
        status, _ = http(port, "GET", "/debug/profile?seconds=bogus")
        check(status == 400, f"seconds=bogus returned {status}, want 400")
        status, _ = http(port, "GET", "/debug/profile?format=xml")
        check(status == 400, f"format=xml returned {status}, want 400")
        status, _ = http(port, "POST", "/debug/profile", body="{}")
        check(status == 405, f"POST /debug/profile returned {status}, "
                             f"want 405")

        # Windowed capture under concurrent scoring traffic.
        stop_event = threading.Event()
        clients = [threading.Thread(target=score_loop,
                                    args=(port, stop_event))
                   for _ in range(3)]
        for client in clients:
            client.start()
        time.sleep(0.3)  # let traffic reach steady state
        try:
            status, text = http(port, "GET", "/debug/profile?seconds=2")
        finally:
            stop_event.set()
            for client in clients:
                client.join()
        if not check(status == 200,
                     f"/debug/profile returned {status}, want 200"):
            return
        payload = json.loads(text)
        check(payload.get("seconds") == 2,
              f"window echoed seconds {payload.get('seconds')}, want 2")
        root = payload.get("profile", {})
        check_tree_invariant(root, "serve tree")

        score = find_node(root, "serve/score")
        if not check(score is not None,
                     "window tree lacks serve/score (no scoring captured "
                     "in a 2s window under load)"):
            return
        inclusive = score.get("inclusive_ns", 0)
        attributed = sum(c.get("inclusive_ns", 0)
                         for c in score.get("children", []))
        check(inclusive > 0, "serve/score captured no time")
        if inclusive > 0:
            coverage = attributed / inclusive
            check(coverage >= 0.9,
                  f"only {coverage:.1%} of serve/score time is attributed "
                  f"to named child scopes (need >= 90%)")
            print(f"serve/score kernel attribution: {coverage:.1%} "
                  f"({attributed} / {inclusive} ns)")

        # Folded variant of the same endpoint.
        status, text = http(port, "GET",
                            "/debug/profile?seconds=1&format=folded")
        if check(status == 200, f"folded window returned {status}"):
            check_folded(text, "serve folded")

        # The windowed capture must not leave profiling latched on: a
        # fresh window starts from a cleared tree either way, but the
        # steady-state hot path should be back to the disabled fast path.
        status, text = http(port, "GET", "/metrics")
        check(status == 200, "server unhealthy after profile windows")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("vgod_serve did not exit after SIGTERM")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to vgod_cli")
    parser.add_argument("--serve", required=True, help="path to vgod_serve")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="vgod_check_profile_") as tmp:
        workdir = Path(tmp)
        check_cli_profile(Path(args.cli), workdir)
        check_serve_profile(Path(args.cli), Path(args.serve), workdir)

    if ERRORS:
        print(f"\ncheck_profile: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_profile: profiler exports and /debug/profile are healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
