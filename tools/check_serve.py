#!/usr/bin/env python3
"""End-to-end validator for the vgod serving stack.

Drives the full deployment loop documented in docs/SERVING.md:

  1. `vgod_cli generate` builds a small injected graph.
  2. `vgod_cli detect --save-bundle` trains a detector and exports a model
     bundle (plus a per-node score file, the ground truth for step 4).
  3. `vgod_serve` boots on an ephemeral port; the banner is parsed for the
     bound port.
  4. Concurrent HTTP clients hit POST /score; responses must match the
     training-time scores. GET /healthz and GET /metrics are validated
     (the serve.* counters and latency histograms must have moved), and a
     malformed request must produce a 4xx, not a crash.
  5. Request-scoped observability: every /score response's request_id
     must appear in the VGOD_ACCESS_LOG JSON log (one well-formed line
     per request, ids strictly increasing), the serve.stage.* histograms
     must be populated with sums consistent with end-to-end latency,
     GET /metrics?format=prometheus must pass exposition-format rules
     and agree with the JSON export, and GET /debug/slow must return
     stage breakdowns for the slowest requests.
  6. Connection-churn sweep: hundreds of short-lived connections must
     leave the server's thread count and fd table at baseline, and the
     serve.transport.open_connections gauge must drain back to zero
     (the epoll reactor never spawns per-connection threads).
  7. SIGTERM must drain and exit 0.
  8. `serve_loadgen --json` runs two-plus thread x batch configurations;
     the JSON report must carry sane p50/p99/throughput numbers plus
     per-stage quantiles.

Run directly (`python3 tools/check_serve.py --cli build/tools/vgod_cli
--serve build/tools/vgod_serve --loadgen build/bench/serve_loadgen`) or
via ctest (registered as check_serve).
"""

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

ERRORS = []

BANNER_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run(cmd, env_extra=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    print("+", " ".join(str(c) for c in cmd))
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, env=env,
        timeout=480)
    if proc.returncode != 0:
        fail(f"command failed ({proc.returncode}): {' '.join(map(str, cmd))}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
    return proc


def http(port, method, path, body=None, timeout=30):
    """Returns (status, parsed-json-or-None)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read().decode())
        except Exception:
            payload = None
        return error.code, payload


def http_text(port, path, timeout=30):
    """Returns (status, content-type, body-text) without JSON parsing."""
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return (reply.status, reply.headers.get("Content-Type", ""),
                    reply.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), ""


def start_server(serve_bin, bundle, graph, access_log=None):
    env = dict(os.environ)
    if access_log is not None:
        env["VGOD_ACCESS_LOG"] = str(access_log)
    proc = subprocess.Popen(
        [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
         "--port=0", "--threads=2", "--max-batch=4", "--max-delay-us=500",
         "--slow-ring=8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = BANNER_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        fail(f"vgod_serve never printed its port; output: {''.join(lines)}")
    return proc, port


PROM_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$')
PROM_LE_RE = re.compile(r'^\{le="([^"]*)"\}$')


def check_prometheus(port, json_metrics):
    """Validates GET /metrics?format=prometheus: exposition-format rules
    (promtool-style) and agreement with the JSON export."""
    status, ctype, _ = http_text(port, "/metrics?format=xml")
    check(status == 400, f"unknown metrics format returned {status}")

    status, ctype, text = http_text(port, "/metrics?format=prometheus")
    if not check(status == 200,
                 f"/metrics?format=prometheus returned {status}"):
        return
    check(ctype.startswith("text/plain") and "version=0.0.4" in ctype,
          f"prometheus content type is {ctype!r}")

    types = {}
    samples = {}
    buckets = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if check(len(parts) == 4 and
                     parts[3] in ("counter", "gauge", "histogram"),
                     f"malformed TYPE line: {line}"):
                types[parts[2]] = parts[3]
            continue
        match = PROM_SAMPLE_RE.match(line)
        if not check(match, f"unparsable exposition line: {line!r}"):
            continue
        name, labels, value = match.groups()
        le = PROM_LE_RE.match(labels) if labels else None
        if le is not None:
            buckets.setdefault(name, []).append((le.group(1), float(value)))
        else:
            # Labeled non-histogram samples (the build_info info gauge)
            # are keyed by bare name like everything else.
            samples[name] = float(value)

    # Every sample belongs to a declared metric family.
    for name in samples:
        base = re.sub(r"_(sum|count)$", "", name)
        check(name in types or base in types,
              f"sample {name} has no # TYPE declaration")

    # Histogram rules: cumulative non-decreasing buckets ending at +Inf,
    # with the +Inf bucket equal to _count.
    for name, series in buckets.items():
        base = re.sub(r"_bucket$", "", name)
        check(types.get(base) == "histogram",
              f"{name} series not declared as a histogram")
        values = [v for _, v in series]
        check(values == sorted(values),
              f"{name} buckets are not cumulative: {series}")
        check(series[-1][0] == "+Inf", f"{name} does not end at le=+Inf")
        count = samples.get(f"{base}_count")
        check(count is not None and count == series[-1][1],
              f"{name}: +Inf bucket {series[-1][1]} != _count {count}")
        check(f"{base}_sum" in samples, f"{base} has no _sum sample")

    # The two exports must agree on counters that only /score moves
    # (scrape-order-insensitive, unlike serve.http.requests).
    if isinstance(json_metrics, dict):
        for json_name in ("serve.requests.total", "serve.requests.completed"):
            want = json_metrics["counters"].get(json_name)
            prom_name = json_name.replace(".", "_")
            check(samples.get(prom_name) == want,
                  f"{prom_name} is {samples.get(prom_name)} in prometheus "
                  f"but {json_name} is {want} in JSON")
        for stage in ("queue_wait", "batch_assembly", "score"):
            prom = f"serve_stage_{stage}_seconds_count"
            check(samples.get(prom, 0) >= 4,
                  f"{prom} missing or empty in prometheus export")

    # Provenance satellites (docs/OBSERVABILITY.md): the build_info
    # info-gauge is a constant 1 with labels, and the process start time
    # is a plausible unix timestamp (after 2020-01-01, not in the future).
    check(samples.get("build_info") == 1.0,
          f"build_info gauge is {samples.get('build_info')}, want 1")
    start = samples.get("process_start_time_seconds")
    check(start is not None and 1577836800 < start <= time.time() + 1,
          f"process_start_time_seconds implausible: {start}")


def proc_threads(pid):
    for line in Path(f"/proc/{pid}/status").read_text().splitlines():
        if line.startswith("Threads:"):
            return int(line.split()[1])
    return -1


def proc_fds(pid):
    return len(os.listdir(f"/proc/{pid}/fd"))


def check_connection_churn(proc, port, connections=200):
    """Transport leak gate: hundreds of short-lived connections must leave
    the server's thread count and fd table at baseline, and the
    serve.transport.open_connections gauge must drain back to zero. A
    thread-per-connection transport would show the thread count spiking
    with the sweep; the epoll reactor keeps it flat. (The /metrics poll
    holds a connection of its own while it runs, so the fd and gauge
    checks tolerate a single straggler.)"""
    pid = proc.pid
    threads_before = proc_threads(pid)
    fds_before = proc_fds(pid)
    errors = 0
    for _ in range(connections):
        try:
            with socket.create_connection(
                    ("127.0.0.1", port), timeout=10) as conn:
                conn.sendall(b"GET /healthz/live HTTP/1.1\r\n"
                             b"host: localhost\r\nconnection: close\r\n\r\n")
                reply = b""
                while True:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    reply += chunk
                if not reply.startswith(b"HTTP/1.1 200"):
                    errors += 1
        except OSError:
            errors += 1
    check(errors == 0, f"churn sweep: {errors}/{connections} short-lived "
                       f"connections failed")
    deadline = time.monotonic() + 10
    gauge = threads_after = fds_after = None
    while time.monotonic() < deadline:
        threads_after = proc_threads(pid)
        fds_after = proc_fds(pid)
        _, metrics = http(port, "GET", "/metrics")
        gauge = (metrics or {}).get("gauges", {}).get(
            "serve.transport.open_connections")
        if (threads_after == threads_before and
                fds_after <= fds_before + 1 and
                gauge is not None and gauge <= 1):
            break
        time.sleep(0.05)
    check(threads_after == threads_before,
          f"churn sweep leaked threads: {threads_before} -> {threads_after}")
    check(fds_after is not None and fds_after <= fds_before + 1,
          f"churn sweep leaked fds: {fds_before} -> {fds_after}")
    check(gauge is not None and gauge <= 1,
          f"serve.transport.open_connections did not drain after the churn "
          f"sweep: {gauge}")


def check_access_log(access_log, seen_request_ids):
    """The access log must hold one well-formed JSON line per request with
    strictly increasing ids, covering every /score response we saw."""
    if not check(access_log.exists(), "VGOD_ACCESS_LOG wrote no file"):
        return
    records = []
    for index, line in enumerate(access_log.read_text().splitlines(), 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            fail(f"access log line {index} is not JSON ({error}): {line!r}")
    if not check(records, "access log is empty"):
        return
    ids = [r.get("id", 0) for r in records]
    check(all(i > 0 for i in ids), "access log has non-positive request ids")
    # Ids come from one monotonic counter, so they are unique; concurrent
    # requests may *complete* (and log) out of order, so file order is only
    # checked for uniqueness, not sortedness.
    check(len(set(ids)) == len(ids),
          f"access log request ids are not unique: {sorted(ids)}")
    check(max(ids) - min(ids) + 1 >= len(ids),
          "access log ids are denser than a monotonic counter allows")
    required = {"id", "path", "status", "nodes", "batch_size", "shed",
                "error_class", "parse_us", "queue_wait_us",
                "batch_assembly_us", "score_us", "serialize_us", "total_us",
                "tensor_peak_bytes"}
    for record in records:
        check(required <= set(record),
              f"access log record lacks fields: {record}")
    logged = set(ids)
    for request_id in seen_request_ids:
        check(request_id in logged,
              f"/score response request_id {request_id} never appeared "
              f"in the access log")
    scored = [r for r in records
              if r.get("path") == "/score" and r.get("status") == 200]
    check(len(scored) >= len(seen_request_ids),
          "access log has fewer successful /score lines than clients saw")
    for record in scored:
        check(record.get("total_us", 0) > 0,
              f"successful /score line has no total latency: {record}")
        check(record.get("score_us", 0) > 0,
              f"successful /score line has no score stage: {record}")
        stage_sum = sum(record.get(k, 0) for k in
                        ("parse_us", "queue_wait_us", "batch_assembly_us",
                         "score_us", "serialize_us"))
        check(stage_sum <= record.get("total_us", 0) + 1000,
              f"stage micros exceed total latency: {record}")


def check_serving(cli, serve_bin, workdir):
    graph = workdir / "serve.graph"
    bundle = workdir / "model.vgodb"
    scores = workdir / "scores.tsv"

    run([cli, "generate", "--dataset=cora", "--scale=0.1", "--seed=7",
         "--inject=standard", f"--output={graph}"])
    run([cli, "detect", f"--graph={graph}", "--detector=VBM",
         "--epoch-scale=0.05", "--seed=7", f"--save-bundle={bundle}",
         f"--output={scores}"])
    if not check(bundle.exists(), "detect --save-bundle wrote no bundle"):
        return
    with open(bundle, "rb") as f:
        check(f.read(8) == b"VGODBNDL", "bundle file lacks the VGODBNDL magic")

    expected = {}
    for line in scores.read_text().splitlines():
        node, value = line.split("\t")
        expected[int(node)] = float(value)
    check(len(expected) > 0, "detect wrote an empty score file")

    access_log = workdir / "access.jsonl"
    proc, port = start_server(serve_bin, bundle, graph, access_log)
    if port is None:
        return
    seen_request_ids = []
    try:
        status, health = http(port, "GET", "/healthz")
        check(status == 200, f"/healthz returned {status}")
        check(health and health.get("status") == "ok",
              f"/healthz payload unexpected: {health}")
        check(health and health.get("detector") == "VBM",
              f"/healthz reported detector {health and health.get('detector')}")
        check(health and health.get("nodes") == len(expected),
              "/healthz node count disagrees with the score file")

        # Concurrent clients: served scores must match the training-time
        # score file (written with %g at ~6 significant digits).
        nodes = sorted(expected)[:8]
        results = [None] * 4

        def client(slot):
            results[slot] = http(
                port, "POST", "/score", json.dumps({"nodes": nodes}))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(results))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for slot, reply in enumerate(results):
            if not check(reply is not None and reply[0] == 200,
                         f"concurrent client {slot} failed: {reply}"):
                continue
            payload = reply[1]
            if not check(payload and payload.get("nodes") == nodes,
                         f"client {slot}: /score echoed wrong nodes"):
                continue
            if check(payload.get("request_id", 0) > 0,
                     f"client {slot}: /score response carries no request_id"):
                seen_request_ids.append(payload["request_id"])
            for node, got in zip(payload["nodes"], payload["scores"]):
                want = expected[node]
                tolerance = max(1e-9, abs(want) * 1e-4)
                check(abs(got - want) <= tolerance,
                      f"served score for node {node} is {got}, "
                      f"training-time score was {want}")

        # Malformed requests degrade to errors, not crashes.
        status, _ = http(port, "POST", "/score", '{"nodes":[999999]}')
        check(400 <= status < 500, f"out-of-range node returned {status}")
        status, _ = http(port, "POST", "/score", "this is not json")
        check(400 <= status < 500, f"non-JSON body returned {status}")
        status, _ = http(port, "GET", "/nope")
        check(status == 404, f"unknown path returned {status}")

        status, metrics = http(port, "GET", "/metrics")
        check(status == 200, f"/metrics returned {status}")
        if check(isinstance(metrics, dict) and
                 {"counters", "gauges", "histograms"} <= set(metrics),
                 f"/metrics envelope malformed: {metrics and list(metrics)}"):
            counters = metrics["counters"]
            check(counters.get("serve.requests.total", 0) >= 4,
                  "serve.requests.total did not count the clients")
            check(counters.get("serve.requests.completed", 0) >= 4,
                  "serve.requests.completed did not move")
            check(counters.get("serve.http.requests", 0) >= 4,
                  "serve.http.requests did not move")
            check("serve.queue.depth" in metrics["gauges"],
                  "serve.queue.depth gauge missing")
            latency = metrics["histograms"].get(
                "serve.request.latency.seconds")
            check(latency is not None and latency.get("count", 0) >= 4,
                  "serve.request.latency.seconds histogram did not move")
            batch = metrics["histograms"].get("serve.batch.size")
            check(batch is not None and batch.get("count", 0) >= 1,
                  "serve.batch.size histogram did not move")

            # Stage histograms: every stage populated, and the engine-side
            # stages decompose (a subset of) the end-to-end latency.
            stage_sum = 0.0
            for stage in ("queue_wait", "batch_assembly", "score", "parse",
                          "serialize"):
                hist = metrics["histograms"].get(
                    f"serve.stage.{stage}.seconds")
                if check(hist is not None and hist.get("count", 0) >= 4,
                         f"serve.stage.{stage}.seconds did not move"):
                    if stage in ("queue_wait", "batch_assembly", "score"):
                        stage_sum += hist.get("sum", 0.0)
            latency_sum = latency.get("sum", 0.0) if latency else 0.0
            check(stage_sum <= latency_sum * 1.01 + 1e-6,
                  f"engine stage sums ({stage_sum}) exceed end-to-end "
                  f"latency sum ({latency_sum})")

        check_prometheus(port, metrics)

        status, slow = http(port, "GET", "/debug/slow")
        check(status == 200, f"/debug/slow returned {status}")
        if check(isinstance(slow, dict) and slow.get("count", 0) >= 1,
                 f"/debug/slow returned no entries: {slow}"):
            entries = slow.get("slowest", [])
            totals = [e.get("total_us", 0) for e in entries]
            check(totals == sorted(totals, reverse=True),
                  "/debug/slow entries are not slowest-first")
            for entry in entries:
                check(entry.get("id", 0) > 0,
                      "/debug/slow entry lacks a request id")
                check(all(k in entry for k in
                          ("parse_us", "queue_wait_us", "batch_assembly_us",
                           "score_us", "serialize_us", "total_us")),
                      f"/debug/slow entry lacks stage fields: {entry}")

        check_connection_churn(proc, port)
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("vgod_serve did not exit within 60s of SIGTERM")
    check(proc.returncode == 0,
          f"vgod_serve exited {proc.returncode} after SIGTERM")
    tail = proc.stdout.read()
    check("drained and stopped" in tail,
          f"vgod_serve did not report a clean drain; tail: {tail[-500:]}")
    check_access_log(access_log, seen_request_ids)


def check_loadgen(loadgen, workdir):
    report_path = workdir / "loadgen.json"
    run([loadgen, "--clients=4", "--requests=8", f"--json={report_path}"],
        env_extra={"VGOD_BENCH_SCALE": "0.1",
                   "VGOD_BENCH_EPOCH_SCALE": "0.05"})
    if not check(report_path.exists(), "serve_loadgen wrote no JSON report"):
        return
    report = json.loads(report_path.read_text())
    check(report.get("benchmark") == "serve_loadgen",
          "loadgen report is missing its benchmark tag")
    configs = report.get("configs", [])
    if not check(len(configs) >= 2,
                 f"loadgen must cover >= 2 configs, got {len(configs)}"):
        return
    combos = {(c.get("threads"), c.get("max_batch")) for c in configs}
    check(len(combos) >= 2, "loadgen configs are not distinct")
    check(len({c.get("threads") for c in configs}) >= 2,
          "loadgen must vary the thread count")
    check(len({c.get("max_batch") for c in configs}) >= 2,
          "loadgen must vary the batch size")
    for config in configs:
        tag = f"t{config.get('threads')}b{config.get('max_batch')}"
        check(config.get("requests", 0) > 0, f"{tag}: no requests recorded")
        check(0 < config.get("score_calls", 0) <= config.get("requests", 0),
              f"{tag}: score_calls outside (0, requests]")
        p50, p99 = config.get("p50_ms", -1), config.get("p99_ms", -1)
        check(0 < p50 <= p99, f"{tag}: bad latency quantiles p50={p50} "
                              f"p99={p99}")
        check(config.get("throughput_rps", 0) > 0, f"{tag}: zero throughput")
        check(config.get("engine_p50_ms", -1) >= 0,
              f"{tag}: engine histogram p50 missing")
        stages = config.get("stages")
        if check(isinstance(stages, dict) and
                 {"queue_wait", "batch_assembly", "score"} <= set(stages),
                 f"{tag}: report lacks per-stage quantiles"):
            for stage_name, quantiles in stages.items():
                s50 = quantiles.get("p50_ms", -1)
                s99 = quantiles.get("p99_ms", -1)
                check(0 <= s50 <= s99,
                      f"{tag}: {stage_name} quantiles bad p50={s50} p99={s99}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to vgod_cli")
    parser.add_argument("--serve", required=True, help="path to vgod_serve")
    parser.add_argument("--loadgen", required=True,
                        help="path to serve_loadgen")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="vgod_serve_check_") as tmp:
        workdir = Path(tmp)
        check_serving(Path(args.cli), Path(args.serve), workdir)
        check_loadgen(Path(args.loadgen), workdir)

    if ERRORS:
        print(f"\ncheck_serve: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_serve: all serving checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
