#!/usr/bin/env python3
"""End-to-end validator for the vgod serving stack.

Drives the full deployment loop documented in docs/SERVING.md:

  1. `vgod_cli generate` builds a small injected graph.
  2. `vgod_cli detect --save-bundle` trains a detector and exports a model
     bundle (plus a per-node score file, the ground truth for step 4).
  3. `vgod_serve` boots on an ephemeral port; the banner is parsed for the
     bound port.
  4. Concurrent HTTP clients hit POST /score; responses must match the
     training-time scores. GET /healthz and GET /metrics are validated
     (the serve.* counters and latency histograms must have moved), and a
     malformed request must produce a 4xx, not a crash.
  5. SIGTERM must drain and exit 0.
  6. `serve_loadgen --json` runs two-plus thread x batch configurations;
     the JSON report must carry sane p50/p99/throughput numbers.

Run directly (`python3 tools/check_serve.py --cli build/tools/vgod_cli
--serve build/tools/vgod_serve --loadgen build/bench/serve_loadgen`) or
via ctest (registered as check_serve).
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

ERRORS = []

BANNER_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run(cmd, env_extra=None):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    print("+", " ".join(str(c) for c in cmd))
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, env=env,
        timeout=480)
    if proc.returncode != 0:
        fail(f"command failed ({proc.returncode}): {' '.join(map(str, cmd))}\n"
             f"stdout: {proc.stdout[-2000:]}\nstderr: {proc.stderr[-2000:]}")
    return proc


def http(port, method, path, body=None, timeout=30):
    """Returns (status, parsed-json-or-None)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read().decode())
        except Exception:
            payload = None
        return error.code, payload


def start_server(serve_bin, bundle, graph):
    proc = subprocess.Popen(
        [str(serve_bin), f"--bundle={bundle}", f"--graph={graph}",
         "--port=0", "--threads=2", "--max-batch=4", "--max-delay-us=500"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = BANNER_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        fail(f"vgod_serve never printed its port; output: {''.join(lines)}")
    return proc, port


def check_serving(cli, serve_bin, workdir):
    graph = workdir / "serve.graph"
    bundle = workdir / "model.vgodb"
    scores = workdir / "scores.tsv"

    run([cli, "generate", "--dataset=cora", "--scale=0.1", "--seed=7",
         "--inject=standard", f"--output={graph}"])
    run([cli, "detect", f"--graph={graph}", "--detector=VBM",
         "--epoch-scale=0.05", "--seed=7", f"--save-bundle={bundle}",
         f"--output={scores}"])
    if not check(bundle.exists(), "detect --save-bundle wrote no bundle"):
        return
    with open(bundle, "rb") as f:
        check(f.read(8) == b"VGODBNDL", "bundle file lacks the VGODBNDL magic")

    expected = {}
    for line in scores.read_text().splitlines():
        node, value = line.split("\t")
        expected[int(node)] = float(value)
    check(len(expected) > 0, "detect wrote an empty score file")

    proc, port = start_server(serve_bin, bundle, graph)
    if port is None:
        return
    try:
        status, health = http(port, "GET", "/healthz")
        check(status == 200, f"/healthz returned {status}")
        check(health and health.get("status") == "ok",
              f"/healthz payload unexpected: {health}")
        check(health and health.get("detector") == "VBM",
              f"/healthz reported detector {health and health.get('detector')}")
        check(health and health.get("nodes") == len(expected),
              "/healthz node count disagrees with the score file")

        # Concurrent clients: served scores must match the training-time
        # score file (written with %g at ~6 significant digits).
        nodes = sorted(expected)[:8]
        results = [None] * 4

        def client(slot):
            results[slot] = http(
                port, "POST", "/score", json.dumps({"nodes": nodes}))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(results))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for slot, reply in enumerate(results):
            if not check(reply is not None and reply[0] == 200,
                         f"concurrent client {slot} failed: {reply}"):
                continue
            payload = reply[1]
            if not check(payload and payload.get("nodes") == nodes,
                         f"client {slot}: /score echoed wrong nodes"):
                continue
            for node, got in zip(payload["nodes"], payload["scores"]):
                want = expected[node]
                tolerance = max(1e-9, abs(want) * 1e-4)
                check(abs(got - want) <= tolerance,
                      f"served score for node {node} is {got}, "
                      f"training-time score was {want}")

        # Malformed requests degrade to errors, not crashes.
        status, _ = http(port, "POST", "/score", '{"nodes":[999999]}')
        check(400 <= status < 500, f"out-of-range node returned {status}")
        status, _ = http(port, "POST", "/score", "this is not json")
        check(400 <= status < 500, f"non-JSON body returned {status}")
        status, _ = http(port, "GET", "/nope")
        check(status == 404, f"unknown path returned {status}")

        status, metrics = http(port, "GET", "/metrics")
        check(status == 200, f"/metrics returned {status}")
        if check(isinstance(metrics, dict) and
                 {"counters", "gauges", "histograms"} <= set(metrics),
                 f"/metrics envelope malformed: {metrics and list(metrics)}"):
            counters = metrics["counters"]
            check(counters.get("serve.requests.total", 0) >= 4,
                  "serve.requests.total did not count the clients")
            check(counters.get("serve.requests.completed", 0) >= 4,
                  "serve.requests.completed did not move")
            check(counters.get("serve.http.requests", 0) >= 4,
                  "serve.http.requests did not move")
            check("serve.queue.depth" in metrics["gauges"],
                  "serve.queue.depth gauge missing")
            latency = metrics["histograms"].get(
                "serve.request.latency.seconds")
            check(latency is not None and latency.get("count", 0) >= 4,
                  "serve.request.latency.seconds histogram did not move")
            batch = metrics["histograms"].get("serve.batch.size")
            check(batch is not None and batch.get("count", 0) >= 1,
                  "serve.batch.size histogram did not move")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("vgod_serve did not exit within 60s of SIGTERM")
    check(proc.returncode == 0,
          f"vgod_serve exited {proc.returncode} after SIGTERM")
    tail = proc.stdout.read()
    check("drained and stopped" in tail,
          f"vgod_serve did not report a clean drain; tail: {tail[-500:]}")


def check_loadgen(loadgen, workdir):
    report_path = workdir / "loadgen.json"
    run([loadgen, "--clients=4", "--requests=8", f"--json={report_path}"],
        env_extra={"VGOD_BENCH_SCALE": "0.1",
                   "VGOD_BENCH_EPOCH_SCALE": "0.05"})
    if not check(report_path.exists(), "serve_loadgen wrote no JSON report"):
        return
    report = json.loads(report_path.read_text())
    check(report.get("benchmark") == "serve_loadgen",
          "loadgen report is missing its benchmark tag")
    configs = report.get("configs", [])
    if not check(len(configs) >= 2,
                 f"loadgen must cover >= 2 configs, got {len(configs)}"):
        return
    combos = {(c.get("threads"), c.get("max_batch")) for c in configs}
    check(len(combos) >= 2, "loadgen configs are not distinct")
    check(len({c.get("threads") for c in configs}) >= 2,
          "loadgen must vary the thread count")
    check(len({c.get("max_batch") for c in configs}) >= 2,
          "loadgen must vary the batch size")
    for config in configs:
        tag = f"t{config.get('threads')}b{config.get('max_batch')}"
        check(config.get("requests", 0) > 0, f"{tag}: no requests recorded")
        check(0 < config.get("score_calls", 0) <= config.get("requests", 0),
              f"{tag}: score_calls outside (0, requests]")
        p50, p99 = config.get("p50_ms", -1), config.get("p99_ms", -1)
        check(0 < p50 <= p99, f"{tag}: bad latency quantiles p50={p50} "
                              f"p99={p99}")
        check(config.get("throughput_rps", 0) > 0, f"{tag}: zero throughput")
        check(config.get("engine_p50_ms", -1) >= 0,
              f"{tag}: engine histogram p50 missing")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to vgod_cli")
    parser.add_argument("--serve", required=True, help="path to vgod_serve")
    parser.add_argument("--loadgen", required=True,
                        help="path to serve_loadgen")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="vgod_serve_check_") as tmp:
        workdir = Path(tmp)
        check_serving(Path(args.cli), Path(args.serve), workdir)
        check_loadgen(Path(args.loadgen), workdir)

    if ERRORS:
        print(f"\ncheck_serve: {len(ERRORS)} failure(s)", file=sys.stderr)
        return 1
    print("check_serve: all serving checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
