#!/usr/bin/env python3
"""End-to-end validator for the vgod observability artifacts.

Drives vgod_cli over a tiny synthetic graph and checks that the three
export formats are well-formed and mutually consistent:

  * --telemetry_out JSONL: one object per epoch with the schema documented
    in docs/OBSERVABILITY.md, epochs numbered 1..N, and loss values that
    match the VGOD_LOG_LEVEL=debug stderr training log line by line.
  * --metrics_out JSON: counters/gauges/histograms envelope; the matmul
    counters must have moved during training.
  * --trace_out Chrome trace JSON: a traceEvents array of complete ("X")
    events including the per-epoch and whole-fit spans.

Run directly (`python3 tools/check_telemetry.py --cli build/tools/vgod_cli`)
or via ctest (registered as check_telemetry).
"""

import argparse
import json
import math
import re
import subprocess
import sys
import tempfile
from pathlib import Path

EPOCH_RECORD_KEYS = {
    "detector": str,
    "epoch": int,
    "planned_epochs": int,
    "loss": float,
    "grad_norm": float,
    "seconds": float,
    "peak_tensor_bytes": int,
}

# Debug line emitted by TrainingRun::EndEpoch, e.g.
# "2026-08-06T12:00:00Z [DEBUG] [tid 1] VBM epoch 3/5 loss=-0.123 ..."
LOG_EPOCH_RE = re.compile(
    r"(?P<detector>\S+) epoch (?P<epoch>\d+)/(?P<planned>\d+) "
    r"loss=(?P<loss>[-+0-9.eEinfa]+) grad_norm=")

ERRORS = []


def fail(message):
    ERRORS.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check(condition, message):
    if not condition:
        fail(message)
    return condition


def run(cmd, env_extra=None):
    import os
    env = dict(os.environ)
    env.pop("VGOD_TRACE", None)  # The CLI flags drive tracing here.
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        fail(f"command failed ({proc.returncode}): {' '.join(cmd)}\n"
             f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        sys.exit(1)
    return proc


def validate_telemetry(path, stderr_log):
    lines = Path(path).read_text().splitlines()
    check(lines, "telemetry JSONL is empty")
    records = []
    for i, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            fail(f"telemetry line {i} is not valid JSON: {err}")
            continue
        for key, kind in EPOCH_RECORD_KEYS.items():
            if not check(key in record, f"telemetry line {i} missing '{key}'"):
                continue
            value = record[key]
            if kind is float:
                ok = isinstance(value, (int, float)) and math.isfinite(value)
            elif kind is int:
                ok = isinstance(value, int) or (
                    isinstance(value, float) and value.is_integer())
            else:
                ok = isinstance(value, kind)
            check(ok, f"telemetry line {i} field '{key}' has bad value "
                      f"{value!r}")
        records.append(record)

    epochs = [r.get("epoch") for r in records]
    check(epochs == list(range(1, len(records) + 1)),
          f"epochs are not 1..N: {epochs}")
    for r in records:
        check(r.get("seconds", -1.0) >= 0.0, "negative epoch seconds")
        check(r.get("peak_tensor_bytes", -1) >= 0, "negative peak bytes")

    # Cross-check against the debug training log: same epochs, same losses.
    logged = [m.groupdict() for m in map(LOG_EPOCH_RE.search,
                                         stderr_log.splitlines()) if m]
    check(len(logged) == len(records),
          f"stderr log has {len(logged)} epoch lines, JSONL has "
          f"{len(records)}")
    for record, entry in zip(records, logged):
        check(record["detector"] == entry["detector"],
              f"detector mismatch: {record['detector']} vs "
              f"{entry['detector']}")
        check(record["epoch"] == int(entry["epoch"]),
              f"epoch mismatch: {record['epoch']} vs {entry['epoch']}")
        logged_loss = float(entry["loss"])
        tolerance = max(1e-4, 1e-3 * abs(logged_loss))
        check(abs(record["loss"] - logged_loss) <= tolerance,
              f"epoch {record['epoch']} loss mismatch: JSONL "
              f"{record['loss']} vs log {logged_loss}")
    return records


def validate_metrics(path):
    metrics = json.loads(Path(path).read_text())
    for section in ("counters", "gauges", "histograms"):
        check(section in metrics, f"metrics JSON missing '{section}'")
    counters = metrics.get("counters", {})
    check(counters.get("tensor.matmul.calls", 0) > 0,
          "tensor.matmul.calls did not move during training")
    check(counters.get("tensor.matmul.flops", 0) > 0,
          "tensor.matmul.flops did not move during training")
    for name, hist in metrics.get("histograms", {}).items():
        bucket_total = sum(b["count"] for b in hist["buckets"])
        check(bucket_total == hist["count"],
              f"histogram {name}: buckets sum {bucket_total} != count "
              f"{hist['count']}")


def validate_trace(path, detector, expected_epochs):
    trace = json.loads(Path(path).read_text())
    check("traceEvents" in trace, "trace JSON missing 'traceEvents'")
    events = trace.get("traceEvents", [])
    check(events, "trace has no events")
    names = [e.get("name") for e in events]
    for event in events:
        check(event.get("ph") == "X", f"non-complete event: {event}")
        for key in ("ts", "dur", "pid", "tid", "name"):
            check(key in event, f"trace event missing '{key}': {event}")
        check(event.get("dur", -1) >= 0, f"negative duration: {event}")
    epoch_spans = names.count(f"{detector}/epoch")
    check(epoch_spans == expected_epochs,
          f"expected {expected_epochs} {detector}/epoch spans, got "
          f"{epoch_spans}")
    check(f"{detector}/fit" in names, f"missing {detector}/fit span")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True,
                        help="path to the built vgod_cli binary")
    parser.add_argument("--detector", default="VBM")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="vgod_telemetry_") as tmp:
        tmp_path = Path(tmp)
        graph = tmp_path / "tiny.graph"
        telemetry = tmp_path / "train.jsonl"
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"

        run([args.cli, "generate", "--dataset=cora", "--scale=0.05",
             "--seed=5", "--inject=standard", f"--output={graph}"])
        detect = run(
            [args.cli, "detect", f"--graph={graph}",
             f"--detector={args.detector}", "--epoch-scale=0.05",
             f"--telemetry_out={telemetry}", f"--metrics_out={metrics}",
             f"--trace_out={trace}"],
            env_extra={"VGOD_LOG_LEVEL": "debug"})

        records = validate_telemetry(telemetry, detect.stderr)
        validate_metrics(metrics)
        if records:
            validate_trace(trace, args.detector, len(records))

    if ERRORS:
        print(f"check_telemetry: {len(ERRORS)} error(s)", file=sys.stderr)
        return 1
    print("check_telemetry: all artifacts consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
