// vgod_cli — command-line front end for the library.
//
//   vgod_cli generate --dataset=cora --output=g.graph [--scale=1] [--seed=7]
//            [--inject=none|standard|structural|contextual|edge-replace]
//   vgod_cli detect --graph=g.graph --detector=VGOD [--self-loop]
//            [--row-normalize] [--seed=7] [--epoch-scale=1]
//            [--num_threads=N] [--output=scores.tsv] [--top=10]
//            [--save-model=prefix] [--telemetry_out=train.jsonl]
//            [--metrics_out=metrics.json] [--trace] [--trace_out=trace.json]
//            [--profile_out=profile.json|profile.folded]
//   vgod_cli eval --graph=g.graph --scores=scores.tsv
//   vgod_cli export-bundle --model=prefix --detector=VGOD --output=m.vgodb
//   vgod_cli serve --bundle=m.vgodb --graph=g.graph [--port=8080]
//            [--threads=2] [--num_threads=N] [--max-batch=8]
//            [--max-delay-us=1000]
//
// `generate` writes a simulated benchmark dataset (optionally with
// injected outliers); `detect` trains a detector and prints/stores scores
// (--save-bundle exports the deployable model bundle of docs/SERVING.md);
// `eval` computes AUC of a score file against the graph's stored labels;
// `export-bundle` converts a legacy text model (--save-model) into a
// bundle; `serve` runs the scoring server in-process (same as vgod_serve).
// Observability (see docs/OBSERVABILITY.md): --telemetry_out streams one
// JSONL record per training epoch, --metrics_out dumps the process metric
// registry, --trace/--trace_out (or the VGOD_TRACE env var) capture Chrome
// trace_event JSON viewable in chrome://tracing, and --profile_out (or
// VGOD_PROFILE=path) writes the hierarchical compute profile — JSON call
// tree for *.json paths, collapsed flamegraph stacks otherwise.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "core/args.h"
#include "core/parallel.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "detectors/arm.h"
#include "detectors/bundle.h"
#include "detectors/registry.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "injection/injection.h"
#include "obs/fingerprint.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace vgod {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: vgod_cli <generate|detect|eval|export-bundle|serve> "
      "[--options]\n"
      "  generate      --dataset=NAME --output=PATH [--scale=F] "
      "[--seed=N] [--inject=MODE]\n"
      "  detect        --graph=PATH [--detector=VGOD] [--self-loop] "
      "[--row-normalize]\n"
      "                [--seed=N] [--epoch-scale=F] [--num_threads=N] "
      "[--output=PATH]\n"
      "                [--top=K] [--save-model=PREFIX] "
      "[--save-bundle=PATH]\n"
      "                [--telemetry_out=PATH] [--metrics_out=PATH] "
      "[--trace] [--trace_out=PATH]\n"
      "                [--profile_out=PATH]\n"
      "  eval          --graph=PATH --scores=PATH\n"
      "  export-bundle --model=PREFIX --detector=NAME --output=PATH "
      "[--self-loop] [--row-normalize]\n"
      "  serve         --bundle=PATH --graph=PATH [--port=N] "
      "[--threads=N] [--num_threads=N]\n"
      "                [--max-batch=N] [--max-delay-us=N] "
      "[--max-queue=N] [--streaming]\n"
      "                [--compact-every=N] [--watchlist-k=N] "
      "[--max-events=N]\n"
      "                [--alert-rules=PATH] [--webhook-url=URL] "
      "[--monitor-interval=S]\n"
      "                [--drift-rotate-seconds=S] "
      "[--drift-window-buckets=N] [--drift-min-count=N]\n");
  return 2;
}

int RunGenerate(const ArgParser& args) {
  Status valid = args.Validate(
      {"dataset", "output", "scale", "seed", "inject", "clique-size",
       "num-cliques", "candidate-set"});
  if (!valid.ok()) return Fail(valid);
  const std::string name = args.GetString("dataset", "");
  const std::string output = args.GetString("output", "");
  if (name.empty() || output.empty()) return Usage();

  const uint64_t seed = args.GetInt("seed", 7);
  Result<datasets::Dataset> dataset =
      datasets::MakeDataset(name, args.GetDouble("scale", 1.0), seed);
  if (!dataset.ok()) return Fail(dataset.status());
  AttributedGraph graph = std::move(dataset.value().graph);

  const std::string inject = args.GetString("inject", "none");
  Rng rng(seed ^ 0xc11);
  const int q = static_cast<int>(args.GetInt("clique-size", 15));
  const int p = static_cast<int>(
      args.GetInt("num-cliques", std::max(1, graph.num_nodes() / (q * 40))));
  const int k = static_cast<int>(args.GetInt("candidate-set", 50));
  if (inject == "standard") {
    Result<injection::InjectionResult> injected =
        injection::InjectStandard(graph, p, q, k, &rng);
    if (!injected.ok()) return Fail(injected.status());
    graph = std::move(injected.value().graph);
  } else if (inject == "structural") {
    Result<injection::InjectionResult> injected =
        injection::InjectStructuralOutliers(graph, p, q, &rng);
    if (!injected.ok()) return Fail(injected.status());
    graph = std::move(injected.value().graph);
  } else if (inject == "contextual") {
    Result<injection::InjectionResult> injected =
        injection::InjectContextualOutliers(
            graph, p * q, k, injection::DistanceKind::kEuclidean, &rng);
    if (!injected.ok()) return Fail(injected.status());
    graph = std::move(injected.value().graph);
  } else if (inject == "edge-replace") {
    Result<injection::InjectionResult> injected =
        injection::InjectStructuralByEdgeReplacement(
            graph, graph.num_nodes() / 10, &rng);
    if (!injected.ok()) return Fail(injected.status());
    graph = std::move(injected.value().graph);
  } else if (inject != "none") {
    return Fail(Status::InvalidArgument("unknown --inject mode: " + inject));
  }

  Status saved = datasets::SaveGraph(graph, output);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s: %d nodes, %lld directed edges, %d attrs%s\n",
              output.c_str(), graph.num_nodes(),
              static_cast<long long>(graph.num_directed_edges()),
              graph.attribute_dim(),
              graph.has_outlier_labels() ? ", labeled" : "");
  return 0;
}

int RunDetect(const ArgParser& args) {
  Status valid = args.Validate({"graph", "detector", "self-loop",
                                "row-normalize", "seed", "epoch-scale",
                                "num_threads", "output", "top",
                                "save-model", "save-bundle",
                                "telemetry_out", "metrics_out", "trace",
                                "trace_out", "profile_out"});
  if (!valid.ok()) return Fail(valid);
  const std::string graph_path = args.GetString("graph", "");
  if (graph_path.empty()) return Usage();

  // Size the kernel pool before any Fit/Score work touches it. 0 keeps the
  // VGOD_NUM_THREADS / hardware default; scores are bit-identical either
  // way (docs/PARALLELISM.md).
  const int num_threads = static_cast<int>(args.GetInt("num_threads", 0));
  if (num_threads > 0) par::SetNumThreads(num_threads);

  obs::InitTraceFromEnv();
  const std::string trace_path =
      args.GetString("trace_out", obs::TraceEnvPath());
  if (args.GetBool("trace") || !trace_path.empty()) {
    obs::SetTraceEnabled(true);
  }
  obs::InitProfileFromEnv();
  const std::string profile_path =
      args.GetString("profile_out", obs::ProfileEnvPath());
  if (!profile_path.empty()) obs::SetProfileEnabled(true);

  Result<AttributedGraph> graph = datasets::LoadGraph(graph_path);
  if (!graph.ok()) return Fail(graph.status());

  std::unique_ptr<obs::TrainingMonitor> monitor;
  const std::string telemetry_path = args.GetString("telemetry_out", "");
  if (!telemetry_path.empty()) {
    Result<std::unique_ptr<obs::TrainingMonitor>> opened =
        obs::TrainingMonitor::WithJsonl(telemetry_path);
    if (!opened.ok()) return Fail(opened.status());
    monitor = std::move(opened).value();
  }

  detectors::DetectorOptions options;
  options.seed = args.GetInt("seed", 7);
  options.self_loop = args.GetBool("self-loop");
  options.row_normalize_attributes = args.GetBool("row-normalize");
  options.epoch_scale = args.GetDouble("epoch-scale", 1.0);
  options.monitor = monitor.get();
  const std::string detector_name = args.GetString("detector", "VGOD");
  Result<std::unique_ptr<detectors::OutlierDetector>> detector =
      detectors::MakeDetector(detector_name, options);
  if (!detector.ok()) return Fail(detector.status());

  Status fit = detector.value()->Fit(graph.value());
  if (!fit.ok()) return Fail(fit);
  detectors::DetectorOutput out;
  {
    VGOD_TRACE_SPAN("cli/score");
    out = detector.value()->Score(graph.value());
  }
  // Rank/sort code below (and eval::Auc) cannot digest NaN scores; fail
  // with a clear message instead of UB or a CHECK abort.
  Status finite = eval::NonFiniteCheck(out.score, detector_name + " scores");
  if (!finite.ok()) return Fail(finite);
  std::printf("%s fitted in %.2fs (%d epochs)\n", detector_name.c_str(),
              detector.value()->train_stats().train_seconds,
              detector.value()->train_stats().epochs);
  if (monitor != nullptr) {
    std::printf("wrote %zu epoch records to %s\n",
                monitor->Records().size(), telemetry_path.c_str());
  }

  const std::string metrics_path = args.GetString("metrics_out", "");
  if (!metrics_path.empty()) {
    Status written = obs::MetricsRegistry::Global().WriteJson(metrics_path);
    if (!written.ok()) return Fail(written);
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (obs::TraceEnabled() && !trace_path.empty()) {
    Status written = obs::WriteTrace(trace_path);
    if (!written.ok()) return Fail(written);
    std::printf("wrote %zu trace events to %s\n", obs::TraceEventCount(),
                trace_path.c_str());
  }
  if (!profile_path.empty()) {
    Status written = obs::WriteProfile(profile_path);
    if (!written.ok()) return Fail(written);
    std::printf("wrote profile to %s\n", profile_path.c_str());
  }

  if (graph.value().has_outlier_labels()) {
    Result<double> auc =
        eval::TryAuc(out.score, graph.value().outlier_labels());
    if (auc.ok()) {
      std::printf("AUC against stored labels: %.4f\n", auc.value());
    } else {
      // Scores were already validated; this is a label pathology (e.g. a
      // single-class graph). Still worth the scores, not worth dying for.
      std::fprintf(stderr, "warning: AUC unavailable: %s\n",
                   auc.status().message().c_str());
    }
  }

  const std::string score_path = args.GetString("output", "");
  if (!score_path.empty()) {
    std::ofstream score_file(score_path);
    if (!score_file) {
      return Fail(Status::IoError("cannot write " + score_path));
    }
    for (size_t i = 0; i < out.score.size(); ++i) {
      score_file << i << "\t" << out.score[i] << "\n";
    }
    std::printf("wrote %zu scores to %s\n", out.score.size(),
                score_path.c_str());
  }

  const std::string model_prefix = args.GetString("save-model", "");
  if (!model_prefix.empty()) {
    auto* vgod = dynamic_cast<detectors::Vgod*>(detector.value().get());
    if (vgod == nullptr) {
      return Fail(Status::InvalidArgument(
          "--save-model currently supports detector=VGOD"));
    }
    Status saved = vgod->Save(model_prefix);
    if (!saved.ok()) return Fail(saved);
    std::printf("saved model to %s.{vbm,arm}\n", model_prefix.c_str());
  }

  const std::string bundle_path = args.GetString("save-bundle", "");
  if (!bundle_path.empty()) {
    Result<detectors::ModelBundle> bundle =
        detector.value()->ExportBundle();
    if (!bundle.ok()) return Fail(bundle.status());
    // Attach the training fingerprint (score-distribution sketch,
    // attribute moments, degree histogram) to the bundle config; the
    // serving drift monitor compares live traffic against it
    // (docs/OBSERVABILITY.md "Model-quality observability").
    {
      const AttributedGraph& fitted = graph.value();
      std::vector<float> scores(out.score.begin(), out.score.end());
      std::vector<int64_t> degrees(
          static_cast<size_t>(fitted.num_nodes()));
      for (int node = 0; node < fitted.num_nodes(); ++node) {
        degrees[static_cast<size_t>(node)] = fitted.Degree(node);
      }
      obs::ModelFingerprint fingerprint = obs::BuildFingerprint(
          scores,
          fitted.has_attributes() ? fitted.attributes().data() : nullptr,
          fitted.num_nodes(),
          fitted.has_attributes() ? fitted.attribute_dim() : 0, degrees);
      obs::JsonValue::Object config = bundle.value().config.object();
      config["fingerprint"] = fingerprint.ToJson();
      bundle.value().config = obs::JsonValue(std::move(config));
    }
    Status saved = detectors::SaveBundle(bundle.value(), bundle_path);
    if (!saved.ok()) return Fail(saved);
    std::printf("saved bundle to %s (%zu parameter tensors, fingerprinted)\n",
                bundle_path.c_str(), bundle.value().params.size());
  }

  const int top = static_cast<int>(args.GetInt("top", 10));
  std::vector<int> order(out.score.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return out.score[a] > out.score[b]; });
  std::printf("top-%d nodes by outlier score:\n", top);
  for (int i = 0; i < top && i < static_cast<int>(order.size()); ++i) {
    std::printf("  node %6d  score %g\n", order[i], out.score[order[i]]);
  }
  return 0;
}

int RunEval(const ArgParser& args) {
  Status valid = args.Validate({"graph", "scores"});
  if (!valid.ok()) return Fail(valid);
  const std::string graph_path = args.GetString("graph", "");
  const std::string score_path = args.GetString("scores", "");
  if (graph_path.empty() || score_path.empty()) return Usage();

  Result<AttributedGraph> graph = datasets::LoadGraph(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  if (!graph.value().has_outlier_labels()) {
    return Fail(Status::FailedPrecondition(
        "graph has no stored outlier labels to evaluate against"));
  }
  std::ifstream score_file(score_path);
  if (!score_file) return Fail(Status::IoError("cannot read " + score_path));
  std::vector<double> scores(graph.value().num_nodes(), 0.0);
  int node = 0;
  double score = 0.0;
  while (score_file >> node >> score) {
    if (node < 0 || node >= graph.value().num_nodes()) {
      return Fail(Status::OutOfRange("score row for unknown node " +
                                     std::to_string(node)));
    }
    scores[node] = score;
  }
  // The loop above stops on the first token it cannot parse; silently
  // evaluating a half-read file would report a confident, wrong AUC.
  if (!score_file.eof() && score_file.fail()) {
    return Fail(Status::InvalidArgument(
        "malformed score file (expected 'node<TAB>score' rows): " +
        score_path));
  }
  Result<double> auc =
      eval::TryAuc(scores, graph.value().outlier_labels());
  if (!auc.ok()) return Fail(auc.status());
  std::printf("AUC: %.4f\n", auc.value());
  return 0;
}

int RunExportBundle(const ArgParser& args) {
  Status valid = args.Validate(
      {"model", "detector", "output", "self-loop", "row-normalize"});
  if (!valid.ok()) return Fail(valid);
  const std::string model = args.GetString("model", "");
  const std::string output = args.GetString("output", "");
  const std::string name = args.GetString("detector", "VGOD");
  if (model.empty() || output.empty()) return Usage();

  detectors::DetectorOptions options;
  options.self_loop = args.GetBool("self-loop");
  options.row_normalize_attributes = args.GetBool("row-normalize");
  Result<std::unique_ptr<detectors::OutlierDetector>> detector =
      detectors::MakeDetector(name, options);
  if (!detector.ok()) return Fail(detector.status());

  // Read the legacy text checkpoint through the detector's own Load so the
  // module stack is rebuilt from the stored shapes.
  Status loaded = Status::Ok();
  if (auto* vgod = dynamic_cast<detectors::Vgod*>(detector.value().get())) {
    loaded = vgod->Load(model);
  } else if (auto* vbm =
                 dynamic_cast<detectors::Vbm*>(detector.value().get())) {
    loaded = vbm->Load(model);
  } else if (auto* arm =
                 dynamic_cast<detectors::Arm*>(detector.value().get())) {
    loaded = arm->Load(model);
  } else {
    return Fail(Status::InvalidArgument(
        "export-bundle supports detector=VGOD|VBM|ARM, got " + name));
  }
  if (!loaded.ok()) return Fail(loaded);

  Result<detectors::ModelBundle> bundle =
      detector.value()->ExportBundle();
  if (!bundle.ok()) return Fail(bundle.status());
  Status saved = detectors::SaveBundle(bundle.value(), output);
  if (!saved.ok()) return Fail(saved);
  std::printf("exported %s model %s to bundle %s (%zu parameter tensors)\n",
              name.c_str(), model.c_str(), output.c_str(),
              bundle.value().params.size());
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void HandleServeSignal(int) {
  g_serve_stop.store(true, std::memory_order_relaxed);
}

int RunServe(const ArgParser& args) {
  Status valid = args.Validate({"bundle", "graph", "port", "threads",
                                "num_threads", "max-batch", "max-delay-us",
                                "max-queue", "streaming", "compact-every",
                                "watchlist-k", "max-events",
                                "max-connections", "idle-timeout-ms",
                                "dispatch-threads", "alert-rules",
                                "webhook-url", "monitor-interval",
                                "drift-rotate-seconds",
                                "drift-window-buckets", "drift-min-count"});
  if (!valid.ok()) return Fail(valid);
  serve::ServerOptions options;
  options.bundle_path = args.GetString("bundle", "");
  options.graph_path = args.GetString("graph", "");
  if (options.bundle_path.empty() || options.graph_path.empty()) {
    return Usage();
  }
  options.port = static_cast<int>(args.GetInt("port", 8080));
  options.engine.num_threads = static_cast<int>(args.GetInt("threads", 2));
  options.engine.intra_op_threads =
      static_cast<int>(args.GetInt("num_threads", 0));
  options.engine.max_batch = static_cast<int>(args.GetInt("max-batch", 8));
  options.engine.max_delay_us =
      static_cast<int>(args.GetInt("max-delay-us", 1000));
  options.engine.max_queue =
      static_cast<int>(args.GetInt("max-queue", 1024));
  options.streaming = args.GetBool("streaming");
  options.stream.compact_every =
      static_cast<int>(args.GetInt("compact-every", 4096));
  options.stream.watchlist_k =
      static_cast<int>(args.GetInt("watchlist-k", 10));
  options.stream.max_events_per_batch =
      static_cast<int>(args.GetInt("max-events", 4096));
  options.transport.max_connections =
      static_cast<int>(args.GetInt("max-connections", 1024));
  options.transport.idle_timeout_ms =
      static_cast<int>(args.GetInt("idle-timeout-ms", 30000));
  options.transport.dispatch_threads =
      static_cast<int>(args.GetInt("dispatch-threads", 4));
  options.alert_rules_path = args.GetString("alert-rules", "");
  options.monitor.webhook_url = args.GetString("webhook-url", "");
  options.monitor.interval_seconds = args.GetDouble("monitor-interval", 2.0);
  options.monitor.drift.rotate_seconds =
      args.GetDouble("drift-rotate-seconds", 10.0);
  options.monitor.drift.window_buckets =
      static_cast<int>(args.GetInt("drift-window-buckets", 6));
  options.monitor.drift.min_window_count = args.GetInt("drift-min-count", 32);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  return serve::RunServer(options, &g_serve_stop);
}

int Main(int argc, const char* const* argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) return Fail(args.status());
  if (args.value().positional().size() != 1) return Usage();
  const std::string& command = args.value().positional()[0];
  if (command == "generate") return RunGenerate(args.value());
  if (command == "detect") return RunDetect(args.value());
  if (command == "eval") return RunEval(args.value());
  if (command == "export-bundle") return RunExportBundle(args.value());
  if (command == "serve") return RunServe(args.value());
  return Usage();
}

}  // namespace
}  // namespace vgod

int main(int argc, char** argv) { return vgod::Main(argc, argv); }
