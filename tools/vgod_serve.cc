// vgod_serve — the standalone scoring server.
//
//   vgod_serve --bundle=model.vgodb --graph=g.graph [--port=8080]
//              [--threads=2] [--num_threads=N] [--max-batch=8]
//              [--max-delay-us=1000] [--max-queue=1024] [--slow-ring=16]
//
// Loads a model bundle (exported by `vgod_cli detect --save-bundle` or
// `vgod_cli export-bundle`) and the resident graph, then serves
// POST /score, GET /healthz, GET /metrics (?format=prometheus for text
// exposition), GET /debug/slow, GET /debug/drift, GET /debug/alerts, and
// the GET /events SSE stream over HTTP/1.1 on loopback until
// SIGINT/SIGTERM, draining in-flight work before exiting. Set
// VGOD_ACCESS_LOG=PATH (or "-" for stderr) for a structured JSON access
// log, one line per request. See docs/SERVING.md.
#include <atomic>
#include <csignal>
#include <cstdio>

#include "core/args.h"
#include "serve/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace vgod;

  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status valid = args.value().Validate({"bundle", "graph", "port", "threads",
                                        "num_threads", "max-batch",
                                        "max-delay-us", "max-queue",
                                        "slow-ring", "streaming",
                                        "compact-every", "watchlist-k",
                                        "max-events", "max-connections",
                                        "idle-timeout-ms",
                                        "dispatch-threads", "alert-rules",
                                        "webhook-url", "monitor-interval",
                                        "drift-rotate-seconds",
                                        "drift-window-buckets",
                                        "drift-min-count"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }

  serve::ServerOptions options;
  options.bundle_path = args.value().GetString("bundle", "");
  options.graph_path = args.value().GetString("graph", "");
  if (options.bundle_path.empty() || options.graph_path.empty()) {
    std::fprintf(stderr,
                 "usage: vgod_serve --bundle=PATH --graph=PATH [--port=N]\n"
                 "                  [--threads=N] [--num_threads=N]\n"
                 "                  [--max-batch=N] [--max-delay-us=N]\n"
                 "                  [--max-queue=N] [--slow-ring=N]\n"
                 "                  [--streaming] [--compact-every=N]\n"
                 "                  [--watchlist-k=N] [--max-events=N]\n"
                 "                  [--max-connections=N]\n"
                 "                  [--idle-timeout-ms=N]\n"
                 "                  [--dispatch-threads=N]\n"
                 "                  [--alert-rules=PATH] [--webhook-url=URL]\n"
                 "                  [--monitor-interval=SECONDS]\n"
                 "                  [--drift-rotate-seconds=SECONDS]\n"
                 "                  [--drift-window-buckets=N]\n"
                 "                  [--drift-min-count=N]\n"
                 "env:   VGOD_ACCESS_LOG=PATH|-  JSON access log\n");
    return 2;
  }
  options.port = static_cast<int>(args.value().GetInt("port", 8080));
  options.engine.num_threads =
      static_cast<int>(args.value().GetInt("threads", 2));
  // Intra-op kernel pool width, applied by the engine at Start(). 0 keeps
  // the VGOD_NUM_THREADS / hardware default (docs/PARALLELISM.md).
  options.engine.intra_op_threads =
      static_cast<int>(args.value().GetInt("num_threads", 0));
  options.engine.max_batch =
      static_cast<int>(args.value().GetInt("max-batch", 8));
  options.engine.max_delay_us =
      static_cast<int>(args.value().GetInt("max-delay-us", 1000));
  options.engine.max_queue =
      static_cast<int>(args.value().GetInt("max-queue", 1024));
  options.slow_ring =
      static_cast<int>(args.value().GetInt("slow-ring", 16));
  // Streaming ingest (docs/STREAMING.md): POST /ingest mutates the
  // resident graph, /debug/watchlist serves the online top-k.
  options.streaming = args.value().GetBool("streaming");
  options.stream.compact_every =
      static_cast<int>(args.value().GetInt("compact-every", 4096));
  options.stream.watchlist_k =
      static_cast<int>(args.value().GetInt("watchlist-k", 10));
  options.stream.max_events_per_batch =
      static_cast<int>(args.value().GetInt("max-events", 4096));
  // Reactor transport knobs (docs/SERVING.md "Transport").
  options.transport.max_connections =
      static_cast<int>(args.value().GetInt("max-connections", 1024));
  options.transport.idle_timeout_ms =
      static_cast<int>(args.value().GetInt("idle-timeout-ms", 30000));
  options.transport.dispatch_threads =
      static_cast<int>(args.value().GetInt("dispatch-threads", 4));
  // Model-quality monitoring (docs/OBSERVABILITY.md): declarative alert
  // rules, a loopback webhook for firing/resolved transitions, and the
  // drift window shape. The small knobs exist so the e2e drift gate can
  // induce and observe a firing alert in seconds, not minutes.
  options.alert_rules_path = args.value().GetString("alert-rules", "");
  options.monitor.webhook_url = args.value().GetString("webhook-url", "");
  options.monitor.interval_seconds =
      args.value().GetDouble("monitor-interval", 2.0);
  options.monitor.drift.rotate_seconds =
      args.value().GetDouble("drift-rotate-seconds", 10.0);
  options.monitor.drift.window_buckets =
      static_cast<int>(args.value().GetInt("drift-window-buckets", 6));
  options.monitor.drift.min_window_count =
      args.value().GetInt("drift-min-count", 32);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  return serve::RunServer(options, &g_stop);
}
